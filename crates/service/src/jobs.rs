//! Job queue and fixed worker pool.
//!
//! Connection threads [`JobQueue::submit`] work and block in
//! [`JobQueue::wait`]; a fixed set of worker threads pops jobs FIFO and runs
//! them through the resident [`kdc_api::Session`] of the cached graph — the
//! same typed query surface the CLI and embedders use, so the daemon serves
//! exactly the measured path. All coordination is one `Mutex` around the
//! queue state plus two `Condvar`s (`work_ready` wakes idle workers,
//! `job_done` wakes waiters), so the pool is std-only.
//!
//! Cancellation is cooperative: every job owns a [`CancelFlag`] that is
//! threaded into the session budget, and `CANCEL <id>` simply raises it —
//! the branch-and-bound engine notices at its next node. Per-job deadlines
//! and node limits ride the same [`kdc_api::Budget`].

use crate::cache::GraphEntry;
use crate::sync::{rank, TrackedMutex};
use kdc::{CancelFlag, Status};
use kdc_api::{BatchOutcome, Budget, Observer, Options, Outcome, Query, SubQuery};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

/// A Debug-opaque observer handle, so [`JobSpec`] stays derive-Debuggable
/// while a verbose job streams [`kdc_api::Event`]s back to its connection.
#[derive(Clone)]
pub struct JobObserver(pub Arc<dyn Observer>);

impl std::fmt::Debug for JobObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JobObserver(..)")
    }
}

/// What a job should run.
#[derive(Clone, Debug)]
pub enum JobSpec {
    /// An exact maximum k-defective clique solve.
    Solve {
        /// Cached graph to solve on.
        entry: Arc<GraphEntry>,
        /// The k of the k-defective clique.
        k: usize,
        /// Preset name (`"kdc"`, `"kdc_t"`, `"kdclub"`, `"kdbb"`, `"madec"`).
        preset: String,
        /// Per-job wall-clock deadline.
        limit: Option<Duration>,
        /// Per-job branch-and-bound node limit.
        nodes: Option<u64>,
        /// 1 = sequential solver, otherwise parallel ego decomposition
        /// (0 = all cores).
        threads: usize,
        /// Event stream for `SOLVE verbose=1` connections.
        observer: Option<JobObserver>,
        /// Phase-span recorder for the `TRACE <id>` verb and the slow-query
        /// log; the queue keeps a clone on the job record.
        trace: Option<kdc_obs::Tracer>,
    },
    /// A batched k-sweep (`MSOLVE`): one job answering `k_lo..=k_hi` as a
    /// planned [`kdc_api::BatchPlan`] sweep with shared seeds/bounds. One
    /// `CANCEL` aborts the whole sweep; a draining shutdown lets all of it
    /// finish.
    Batch {
        /// Cached graph to sweep on.
        entry: Arc<GraphEntry>,
        /// First k of the inclusive sweep.
        k_lo: usize,
        /// Last k of the inclusive sweep.
        k_hi: usize,
        /// When set, each sub-query enumerates a top-`r` pool.
        r: Option<usize>,
        /// Preset name shared by every sub-query.
        preset: String,
        /// Batch-wide wall-clock deadline.
        limit: Option<Duration>,
        /// Per-sub-query branch-and-bound node limit.
        nodes: Option<u64>,
        /// Solver threads per sub-solve (same semantics as `Solve`).
        threads: usize,
        /// Event stream carrying the per-sub-query
        /// [`kdc_api::Event::SubDone`] completions (`RESULT` lines).
        observer: Option<JobObserver>,
        /// Phase-span recorder, as for `Solve`.
        trace: Option<kdc_obs::Tracer>,
    },
    /// Top-r maximal k-defective clique enumeration.
    Enumerate {
        /// Cached graph to enumerate on.
        entry: Arc<GraphEntry>,
        /// The k of the k-defective clique.
        k: usize,
        /// Pool size r.
        top: usize,
    },
    /// Exact per-size counting of k-defective cliques.
    Count {
        /// Cached graph to count on.
        entry: Arc<GraphEntry>,
        /// The k of the k-defective clique.
        k: usize,
        /// Smallest size to count.
        min_size: usize,
    },
}

impl JobSpec {
    /// The job's tracer, if one was attached (`Solve`/`Batch` only).
    fn trace(&self) -> Option<kdc_obs::Tracer> {
        match self {
            JobSpec::Solve { trace, .. } | JobSpec::Batch { trace, .. } => trace.clone(),
            _ => None,
        }
    }

    /// Whether the job carries its own deadline or node budget. Jobs that
    /// don't are the watchdog's prey: nothing else bounds them.
    fn has_deadline(&self) -> bool {
        match self {
            JobSpec::Solve { limit, nodes, .. } | JobSpec::Batch { limit, nodes, .. } => {
                limit.is_some() || nodes.is_some()
            }
            JobSpec::Enumerate { .. } | JobSpec::Count { .. } => false,
        }
    }

    /// Compact single-token description for `JOBS` listings.
    fn describe(&self) -> String {
        match self {
            JobSpec::Solve {
                entry, k, preset, ..
            } => format!("solve({},k={k},preset={preset})", entry.name),
            JobSpec::Batch {
                entry,
                k_lo,
                k_hi,
                preset,
                ..
            } => format!("batch({},k={k_lo}..{k_hi},preset={preset})", entry.name),
            JobSpec::Enumerate { entry, k, top } => {
                format!("enumerate({},k={k},top={top})", entry.name)
            }
            JobSpec::Count { entry, k, min_size } => {
                format!("count({},k={k},min={min_size})", entry.name)
            }
        }
    }
}

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, not yet picked up by a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished (see the outcome for the solve status).
    Done,
    /// Cancelled before or during execution.
    Cancelled,
    /// The job itself failed (e.g. unknown preset).
    Failed,
}

impl JobState {
    /// Lower-case protocol token.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

/// Result of a finished job.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The query finished (possibly best-effort; see
    /// [`kdc_api::Outcome::status`]). Boxed: an `Outcome` carries witness
    /// vectors and full search statistics, far larger than the error arm.
    Done(Box<Outcome>),
    /// A batched sweep finished: per-sub-query outcomes plus the batch's
    /// shared-work counters. Boxed for the same reason as `Done`.
    Batch(Box<BatchOutcome>),
    /// The job failed before producing a result.
    Error(String),
}

/// One row of a `JOBS` listing.
#[derive(Clone, Debug)]
pub struct JobInfo {
    /// Job id (monotonically increasing from 1).
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Compact description, e.g. `solve(g1,k=2,preset=kdc)`.
    pub description: String,
    /// Nanoseconds spent waiting in the queue (still growing while queued).
    pub queued_ns: u64,
    /// Nanoseconds spent executing (0 if never started; still growing
    /// while running).
    pub running_ns: u64,
    /// Why the job reached its terminal state, when the cause is the
    /// daemon rather than the query (today: `Some("watchdog")`).
    pub reason: Option<&'static str>,
}

struct JobRecord {
    state: JobState,
    description: String,
    cancel: CancelFlag,
    outcome: Option<JobOutcome>,
    submitted: Instant,
    started: Option<Instant>,
    finished: Option<Instant>,
    trace: Option<kdc_obs::Tracer>,
    /// The spec carried its own limit/node budget, exempting it from the
    /// watchdog's default deadline.
    has_deadline: bool,
    /// The watchdog cancelled this job; `finish` reports it as failed.
    watchdog_fired: bool,
}

impl JobRecord {
    /// Queue-wait so far: submission to pickup (or finalization, for jobs
    /// cancelled while queued; `now` while still waiting).
    fn queued_ns(&self, now: Instant) -> u64 {
        let end = self.started.or(self.finished).unwrap_or(now);
        duration_ns(end.saturating_duration_since(self.submitted))
    }

    /// Execution time so far: pickup to completion (`now` while running,
    /// 0 if never picked up).
    fn running_ns(&self, now: Instant) -> u64 {
        match self.started {
            None => 0,
            Some(started) => {
                let end = self.finished.unwrap_or(now);
                duration_ns(end.saturating_duration_since(started))
            }
        }
    }
}

/// Saturating nanosecond count of a duration.
fn duration_ns(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

#[derive(Default)]
struct QueueState {
    next_id: u64,
    queue: VecDeque<(u64, JobSpec)>,
    records: HashMap<u64, JobRecord>,
    /// Ids in submission order, for stable `JOBS` listings.
    history: Vec<u64>,
    shutdown: bool,
    /// Draining: no new submissions, but workers keep popping until the
    /// queue and the running set are both empty.
    draining: bool,
    /// Jobs currently executing on workers (picked up, not yet finished).
    running: usize,
}

/// The shared queue: submit/wait/cancel/list on one mutex, two condvars.
/// The mutex is rank-checked against `LOCK_ORDER.md` in debug builds and
/// recovers from poisoning — a job that panics mid-flight must not wedge
/// the queue for every later request.
pub struct JobQueue {
    state: TrackedMutex<QueueState>,
    work_ready: Condvar,
    job_done: Condvar,
    /// Registry twins: current queue depth, lifetime submissions, and the
    /// queue-wait / execution latency distributions.
    depth: kdc_obs::Gauge,
    jobs_total: kdc_obs::Counter,
    queue_wait_ns: kdc_obs::Histogram,
    job_duration_ns: kdc_obs::Histogram,
    watchdog_kills: kdc_obs::Counter,
    faults_injected: kdc_obs::Counter,
}

/// Why [`JobQueue::try_submit`] refused a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its admission-control depth bound; try again after
    /// a backoff (the daemon turns this into a typed `ERR busy` reply).
    Busy {
        /// Queue depth observed at rejection time.
        depth: usize,
    },
    /// The daemon is draining or shut down; no new work is admitted.
    ShuttingDown,
}

impl Default for JobQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        let r = kdc_obs::registry();
        JobQueue {
            state: TrackedMutex::new(rank::JOB_QUEUE, "JobQueue::state", QueueState::default()),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            depth: r.register_gauge("kdc_service_queue_depth"),
            jobs_total: r.register_counter("kdc_service_jobs_total"),
            queue_wait_ns: r.register_histogram("kdc_service_queue_wait_ns"),
            job_duration_ns: r.register_histogram("kdc_service_job_duration_ns"),
            watchdog_kills: r.register_counter("kdc_service_watchdog_kills_total"),
            faults_injected: r.register_counter("kdc_service_faults_injected_total"),
        }
    }

    /// Enqueues `spec`; returns the job id immediately. After
    /// [`JobQueue::shutdown`] (or during a drain) the job is finalized as
    /// cancelled on the spot (no worker will ever pop it), so waiters never
    /// block forever.
    pub fn submit(&self, spec: JobSpec) -> u64 {
        let now = Instant::now();
        let mut state = self.state.lock();
        state.next_id += 1;
        let id = state.next_id;
        let shutting_down = state.shutdown || state.draining;
        state.records.insert(
            id,
            JobRecord {
                state: if shutting_down {
                    JobState::Cancelled
                } else {
                    JobState::Queued
                },
                description: spec.describe(),
                cancel: CancelFlag::new(),
                outcome: shutting_down
                    .then(|| JobOutcome::Error("server shutting down".to_string())),
                submitted: now,
                started: None,
                finished: shutting_down.then_some(now),
                trace: spec.trace(),
                has_deadline: spec.has_deadline(),
                watchdog_fired: false,
            },
        );
        state.history.push(id);
        if !shutting_down {
            state.queue.push_back((id, spec));
        }
        self.jobs_total.inc();
        self.depth.set(state.queue.len() as i64);
        drop(state);
        self.work_ready.notify_one();
        id
    }

    /// Admission-controlled submit: refuses instead of queueing when the
    /// queue already holds `max_depth` jobs (`max_depth` 0 = unlimited) or
    /// the daemon is draining/shut down. On refusal nothing is recorded —
    /// a rejected request leaves no `JOBS` row to leak.
    pub fn try_submit(&self, spec: JobSpec, max_depth: usize) -> Result<u64, SubmitError> {
        {
            let state = self.state.lock();
            if state.shutdown || state.draining {
                return Err(SubmitError::ShuttingDown);
            }
            let depth = state.queue.len();
            if max_depth > 0 && depth >= max_depth {
                return Err(SubmitError::Busy { depth });
            }
            // The lock is released and re-taken by `submit`; a racing
            // submit can overshoot `max_depth` by at most the number of
            // concurrently admitted connections, which is what the bound
            // is for — a load shedder, not an exact invariant.
        }
        Ok(self.submit(spec))
    }

    /// Blocks until job `id` reaches a terminal state; returns its outcome.
    pub fn wait(&self, id: u64) -> JobOutcome {
        let mut state = self.state.lock();
        loop {
            match state.records.get(&id) {
                None => return JobOutcome::Error(format!("unknown job {id}")),
                Some(record) => {
                    if let Some(outcome) = &record.outcome {
                        return outcome.clone();
                    }
                }
            }
            state.wait(&self.job_done);
        }
    }

    /// Raises job `id`'s cancel flag. A queued job is finalized immediately;
    /// a running one aborts at the engine's next branch-and-bound node.
    pub fn cancel(&self, id: u64) -> Result<JobState, String> {
        let mut state = self.state.lock();
        let Some(record) = state.records.get_mut(&id) else {
            return Err(format!("unknown job {id}"));
        };
        record.cancel.cancel();
        let was = record.state;
        if was == JobState::Queued {
            // Finalize now so JOBS/wait reflect the cancellation without
            // waiting for a free worker, and drop the spec from the queue
            // immediately — a verbose job's event channel lives inside the
            // spec, and its waiting connection unblocks only when the
            // sender is dropped.
            record.state = JobState::Cancelled;
            record.outcome = Some(JobOutcome::Error(format!(
                "job {id} cancelled while queued"
            )));
            record.finished = Some(Instant::now());
            state.queue.retain(|(queued_id, _)| *queued_id != id);
            self.depth.set(state.queue.len() as i64);
            drop(state);
            self.job_done.notify_all();
        }
        Ok(was)
    }

    /// Every job ever submitted, in submission order.
    pub fn list(&self) -> Vec<JobInfo> {
        let now = Instant::now();
        let state = self.state.lock();
        state
            .history
            .iter()
            .filter_map(|id| {
                let record = state.records.get(id)?;
                Some(JobInfo {
                    id: *id,
                    state: record.state,
                    description: record.description.clone(),
                    queued_ns: record.queued_ns(now),
                    running_ns: record.running_ns(now),
                    reason: record.watchdog_fired.then_some("watchdog"),
                })
            })
            .collect()
    }

    /// The tracer attached to job `id`, if the job carried one (solves
    /// submitted over the daemon protocol do).
    pub fn trace(&self, id: u64) -> Result<kdc_obs::Tracer, String> {
        let state = self.state.lock();
        match state.records.get(&id) {
            None => Err(format!("unknown job {id}")),
            Some(record) => record
                .trace
                .clone()
                .ok_or_else(|| format!("job {id} has no trace (only solves are traced)")),
        }
    }

    /// Stops the pool: cancels everything outstanding and wakes all workers
    /// and waiters. Idempotent.
    pub fn shutdown(&self) {
        let mut state = self.state.lock();
        state.shutdown = true;
        let now = Instant::now();
        for record in state.records.values_mut() {
            record.cancel.cancel();
            if record.state == JobState::Queued {
                record.state = JobState::Cancelled;
                record.outcome = Some(JobOutcome::Error("server shutting down".to_string()));
                record.finished = Some(now);
            }
        }
        state.queue.clear();
        self.depth.set(0);
        drop(state);
        self.work_ready.notify_all();
        self.job_done.notify_all();
    }

    /// Graceful drain: stops admitting new jobs, then blocks until every
    /// queued and running job has finished *with its real outcome* (no
    /// cancellation), and finally shuts the pool down. Waiters and verbose
    /// event streams of in-flight jobs complete normally. Idempotent with
    /// [`JobQueue::shutdown`]: if a shutdown races in, the wait ends too.
    pub fn drain(&self) {
        let mut state = self.state.lock();
        state.draining = true;
        while !state.shutdown && (!state.queue.is_empty() || state.running > 0) {
            state.wait(&self.job_done);
        }
        state.shutdown = true;
        drop(state);
        self.work_ready.notify_all();
        self.job_done.notify_all();
    }

    /// Watchdog sweep: cancels every running job that neither carries its
    /// own deadline/node budget nor was already swept, once it has been
    /// executing longer than `default_deadline`. The cancellation is the
    /// usual cooperative flag; the finish bookkeeping turns the eventual
    /// outcome into `failed reason=watchdog`. Returns the number of jobs
    /// swept this call.
    pub fn watchdog_sweep(&self, default_deadline: Duration) -> usize {
        let now = Instant::now();
        let mut swept = 0;
        let mut state = self.state.lock();
        for record in state.records.values_mut() {
            if record.state != JobState::Running || record.has_deadline || record.watchdog_fired {
                continue;
            }
            let running = record
                .started
                .map(|s| now.saturating_duration_since(s))
                .unwrap_or_default();
            if running > default_deadline {
                record.watchdog_fired = true;
                record.cancel.cancel();
                self.watchdog_kills.inc();
                swept += 1;
            }
        }
        swept
    }

    /// Worker side: blocks for the next job, or `None` on shutdown.
    fn next_job(&self) -> Option<(u64, JobSpec, CancelFlag)> {
        let mut state = self.state.lock();
        loop {
            if state.shutdown {
                return None;
            }
            if let Some((id, spec)) = state.queue.pop_front() {
                // A record missing its entry (impossible today, but cheap to
                // tolerate) or already finalized (cancelled while queued) is
                // skipped, not panicked over.
                let Some(record) = state.records.get_mut(&id) else {
                    continue;
                };
                if record.state != JobState::Queued {
                    continue;
                }
                record.state = JobState::Running;
                let now = Instant::now();
                record.started = Some(now);
                let wait_ns = record.queued_ns(now);
                let flag = record.cancel.clone();
                state.running += 1;
                self.depth.set(state.queue.len() as i64);
                self.queue_wait_ns.observe(wait_ns);
                return Some((id, spec, flag));
            }
            state.wait(&self.work_ready);
        }
    }

    /// Worker side: publishes the outcome and wakes waiters (including a
    /// drain blocked on the running set).
    fn finish(&self, id: u64, state_after: JobState, outcome: JobOutcome) {
        let now = Instant::now();
        let mut state = self.state.lock();
        state.running = state.running.saturating_sub(1);
        if let Some(record) = state.records.get_mut(&id) {
            if record.watchdog_fired {
                // The watchdog, not the client, stopped this job: whatever
                // the engine reported, the operator-visible truth is a
                // deadline kill.
                record.state = JobState::Failed;
                record.outcome = Some(JobOutcome::Error(format!(
                    "job {id} killed by watchdog (exceeded the default deadline)"
                )));
            } else {
                record.state = state_after;
                record.outcome = Some(outcome);
            }
            record.finished = Some(now);
            self.job_duration_ns.observe(record.running_ns(now));
        }
        drop(state);
        self.job_done.notify_all();
    }
}

/// When faults are armed, wraps a job's observer (installing one if the job
/// had none) so the `solve_node` point is checked on every search event.
/// `Error`/`DropConnection` raise the job's cooperative cancel flag — the
/// engine aborts at its next node, exactly like `CANCEL <id>`. Disabled
/// faults leave the observer untouched: zero overhead on the search path.
fn with_solve_node_faults(
    observer: Option<Arc<dyn Observer>>,
    cancel: CancelFlag,
) -> Option<Arc<dyn Observer>> {
    if !kdc_faults::enabled() {
        return observer;
    }
    let counter = kdc_obs::registry().register_counter("kdc_service_faults_injected_total");
    Some(Arc::new(move |event: &kdc_api::Event| {
        if let Some(action) = kdc_faults::check(kdc_faults::Point::SolveNode) {
            counter.inc();
            match action {
                kdc_faults::Action::Delay(d) => std::thread::sleep(d),
                kdc_faults::Action::Error
                | kdc_faults::Action::DropConnection
                | kdc_faults::Action::TornWrite => cancel.cancel(),
                kdc_faults::Action::Panic => kdc_faults::panic_now(kdc_faults::Point::SolveNode),
            }
        }
        if let Some(inner) = &observer {
            inner.event(event);
        }
    }) as Arc<dyn Observer>)
}

/// Executes one job spec with the given cancel flag; a pure dispatch onto
/// the entry's [`kdc_api::Session`], so it is unit-testable without a pool.
pub fn run_job(spec: &JobSpec, cancel: CancelFlag) -> JobOutcome {
    let trace = spec.trace();
    let fault_cancel = cancel.clone();
    let (entry, query, budget, options, observer) = match spec {
        JobSpec::Solve {
            entry,
            k,
            preset,
            limit,
            nodes,
            threads,
            observer,
            ..
        } => {
            let options = match Options::preset(preset) {
                Ok(options) => options,
                Err(e) => return JobOutcome::Error(e),
            };
            let mut budget = Budget::default().with_threads(*threads).with_cancel(cancel);
            budget.time_limit = *limit;
            budget.node_limit = *nodes;
            (
                entry,
                Query::Solve { k: *k },
                budget,
                options,
                observer.as_ref().map(|o| o.0.clone()),
            )
        }
        // A batch is dispatched through `Session::run_batch_observed`
        // directly — not the folded `Query::Batch` surface — so the
        // per-sub-query outcomes and shared-work counters survive into the
        // `JobOutcome::Batch` the MSOLVE handler reports.
        JobSpec::Batch {
            entry,
            k_lo,
            k_hi,
            r,
            preset,
            limit,
            nodes,
            threads,
            observer,
            ..
        } => {
            let options = match Options::preset(preset) {
                Ok(options) => options,
                Err(e) => return JobOutcome::Error(e),
            };
            let mut budget = Budget::default().with_threads(*threads).with_cancel(cancel);
            budget.time_limit = *limit;
            budget.node_limit = *nodes;
            let subs: Vec<SubQuery> = (*k_lo..=*k_hi)
                .map(|k| SubQuery {
                    k,
                    r: *r,
                    preset: None,
                })
                .collect();
            let observer = observer.as_ref().map(|o| o.0.clone());
            let observer = with_solve_node_faults(observer, fault_cancel);
            return match entry
                .session()
                .run_batch_observed(&subs, &budget, &options, observer, trace)
            {
                Ok(batch) => JobOutcome::Batch(Box::new(batch)),
                Err(e) => JobOutcome::Error(e),
            };
        }
        JobSpec::Enumerate { entry, k, top } => (
            entry,
            Query::TopR {
                k: *k,
                r: *top,
                diversify: false,
            },
            Budget::default().with_cancel(cancel),
            Options::default(),
            None,
        ),
        JobSpec::Count { entry, k, min_size } => (
            entry,
            Query::Count {
                k: *k,
                min_size: *min_size,
            },
            Budget::default().with_cancel(cancel),
            Options::default(),
            None,
        ),
    };
    let observer = with_solve_node_faults(observer, fault_cancel);
    match entry
        .session()
        .run_observed(&query, &budget, &options, observer, trace)
    {
        Ok(outcome) => JobOutcome::Done(Box::new(outcome)),
        Err(e) => JobOutcome::Error(e),
    }
}

/// A fixed pool of worker threads draining a shared [`JobQueue`].
pub struct WorkerPool {
    queue: Arc<JobQueue>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) on `queue`. Fails with the
    /// OS error if no worker thread could be spawned at all; a partially
    /// spawned pool (resource exhaustion mid-loop) is returned and simply
    /// runs narrower.
    pub fn new(queue: Arc<JobQueue>, workers: usize) -> std::io::Result<Self> {
        let workers = workers.max(1);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let queue = queue.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("kdc-worker-{i}"))
                .spawn(move || worker_loop(&queue));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) if handles.is_empty() => return Err(e),
                Err(_) => break,
            }
        }
        Ok(WorkerPool { queue, handles })
    }

    /// Shuts the queue down and joins every worker.
    pub fn join(self) {
        self.queue.shutdown();
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(queue: &JobQueue) {
    while let Some((id, spec, cancel)) = queue.next_job() {
        if cancel.is_cancelled() {
            queue.finish(
                id,
                JobState::Cancelled,
                JobOutcome::Error(format!("job {id} cancelled")),
            );
            continue;
        }
        // Panic isolation: a job that panics must still publish an outcome
        // (or its waiter blocks forever) and must not kill the pool worker.
        // The job_start fault point runs *inside* the isolation boundary so
        // an injected panic exercises the same recovery path a real one
        // would.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(action) = kdc_faults::check(kdc_faults::Point::JobStart) {
                queue.faults_injected.inc();
                match action {
                    kdc_faults::Action::Delay(d) => std::thread::sleep(d),
                    kdc_faults::Action::Error
                    | kdc_faults::Action::DropConnection
                    | kdc_faults::Action::TornWrite => {
                        return JobOutcome::Error(format!("job {id}: fault injected at job_start"));
                    }
                    kdc_faults::Action::Panic => kdc_faults::panic_now(kdc_faults::Point::JobStart),
                }
            }
            run_job(&spec, cancel)
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_string());
            JobOutcome::Error(format!("job {id} panicked: {msg}"))
        });
        let state_after = match &outcome {
            JobOutcome::Done(outcome) if outcome.status == Status::Cancelled => JobState::Cancelled,
            JobOutcome::Batch(batch) if batch.status() == Status::Cancelled => JobState::Cancelled,
            JobOutcome::Error(_) => JobState::Failed,
            JobOutcome::Done(_) | JobOutcome::Batch(_) => JobState::Done,
        };
        queue.finish(id, state_after, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::GraphCache;
    use kdc_graph::{gen, named};

    fn figure2_entry() -> Arc<GraphEntry> {
        let cache = GraphCache::new();
        cache.insert("fig2", named::figure2())
    }

    fn solve_spec(entry: Arc<GraphEntry>, k: usize, preset: &str) -> JobSpec {
        JobSpec::Solve {
            entry,
            k,
            preset: preset.into(),
            limit: None,
            nodes: None,
            threads: 1,
            observer: None,
            trace: None,
        }
    }

    #[test]
    fn pool_runs_solve_jobs_and_memoizes() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 2).expect("spawn pool");
        let spec = solve_spec(entry.clone(), 2, "kdc");
        let first = queue.submit(spec.clone());
        let JobOutcome::Done(outcome) = queue.wait(first) else {
            panic!("expected a solve outcome");
        };
        assert_eq!(outcome.size(), 6);
        assert!(!outcome.cache.result_memo_hit);

        let second = queue.submit(spec);
        let JobOutcome::Done(outcome) = queue.wait(second) else {
            panic!("expected a solve outcome");
        };
        assert_eq!(outcome.size(), 6);
        assert!(
            outcome.cache.result_memo_hit,
            "second identical solve must hit the memo"
        );
        assert_eq!(
            entry.session().counters().solves,
            1,
            "only one real solve executed"
        );
        pool.join();
    }

    #[test]
    fn warm_solve_resumes_the_resident_reducer() {
        // End-to-end through run_job: two identical solves with different
        // presets (dodging the result memo) must build the reducer once and
        // resume it once, with identical answers.
        let mut rng = kdc_graph::gen::seeded_rng(31);
        let (g, _) = kdc_graph::gen::planted_defective_clique(200, 12, 2, 0.03, &mut rng);
        let cache = GraphCache::new();
        let entry = cache.insert("planted", g);
        let JobOutcome::Done(first) =
            run_job(&solve_spec(entry.clone(), 2, "kdc"), CancelFlag::new())
        else {
            panic!("expected solve outcome");
        };
        let counters = entry.session().counters();
        assert_eq!(
            (counters.ctcp_builds, counters.ctcp_resumes),
            (1, 0),
            "cold solve builds"
        );
        let JobOutcome::Done(second) =
            run_job(&solve_spec(entry.clone(), 2, "kdbb"), CancelFlag::new())
        else {
            panic!("expected solve outcome");
        };
        assert!(
            !second.cache.result_memo_hit,
            "different preset must not hit the memo"
        );
        assert_eq!(first.size(), second.size());
        let counters = entry.session().counters();
        // kdbb shares kdc's (rr5, rr6) = (true, true) rule set, so the
        // second solve resumes the same resident reducer.
        assert_eq!(
            (counters.ctcp_builds, counters.ctcp_resumes),
            (1, 1),
            "warm solve must resume"
        );
        assert_eq!(
            second.stats.ctcp_vertex_removals, 0,
            "resumed reducer already at the fixpoint for this bound"
        );
        assert_eq!(
            entry.session().best_known(2).unwrap().len(),
            first.size(),
            "witness recorded for seeding"
        );
    }

    #[test]
    fn queued_job_cancel_is_immediate() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        // No workers: the job stays queued forever unless cancel finalizes it.
        let id = queue.submit(solve_spec(entry, 1, "kdc"));
        assert_eq!(queue.cancel(id).unwrap(), JobState::Queued);
        assert!(matches!(queue.wait(id), JobOutcome::Error(_)));
        assert_eq!(queue.list()[0].state, JobState::Cancelled);
        assert!(queue.cancel(999).is_err());
    }

    #[test]
    fn cancelling_a_queued_verbose_job_releases_its_event_channel() {
        // A verbose connection drains the job's event channel until the
        // sender drops. Cancelling a *queued* job must drop its spec (and
        // with it the sender) immediately — not when some worker eventually
        // pops it — or the connection hangs behind unrelated jobs.
        use std::sync::mpsc;
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new()); // deliberately no workers
        let (tx, rx) = mpsc::channel::<kdc_api::Event>();
        let tx = std::sync::Mutex::new(tx);
        let observer: Arc<dyn kdc_api::Observer> = Arc::new(move |e: &kdc_api::Event| {
            let _ = tx.lock().expect("poisoned").send(*e);
        });
        let id = queue.submit(JobSpec::Solve {
            entry,
            k: 2,
            preset: "kdc".into(),
            limit: None,
            nodes: None,
            threads: 1,
            observer: Some(JobObserver(observer)),
            trace: None,
        });
        queue.cancel(id).unwrap();
        assert!(
            rx.recv().is_err(),
            "sender must be dropped with the queued spec"
        );
        assert!(matches!(queue.wait(id), JobOutcome::Error(_)));
    }

    #[test]
    fn running_job_cancel_aborts_search() {
        let mut rng = gen::seeded_rng(42);
        let cache = GraphCache::new();
        let entry = cache.insert("hard", gen::gnp(220, 0.5, &mut rng));
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1).expect("spawn pool");
        let id = queue.submit(solve_spec(entry, 12, "kdc"));
        // Wait for it to leave the queue, then cancel mid-search.
        loop {
            let info = &queue.list()[0];
            if info.state != JobState::Queued {
                break;
            }
            std::thread::yield_now();
        }
        queue.cancel(id).unwrap();
        let JobOutcome::Done(outcome) = queue.wait(id) else {
            panic!("expected a solve outcome");
        };
        assert_eq!(outcome.status, Status::Cancelled);
        assert_eq!(queue.list()[0].state, JobState::Cancelled);
        pool.join();
    }

    #[test]
    fn unknown_preset_fails_the_job() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1).expect("spawn pool");
        let id = queue.submit(solve_spec(entry, 1, "nope"));
        assert!(matches!(queue.wait(id), JobOutcome::Error(_)));
        assert_eq!(queue.list()[0].state, JobState::Failed);
        pool.join();
    }

    #[test]
    fn node_limited_job_reports_best_effort() {
        let mut rng = gen::seeded_rng(77);
        let cache = GraphCache::new();
        let entry = cache.insert("dense", gen::gnp(80, 0.5, &mut rng));
        let spec = JobSpec::Solve {
            entry,
            k: 6,
            preset: "kdc_t".into(),
            limit: None,
            nodes: Some(1),
            threads: 1,
            observer: None,
            trace: None,
        };
        let JobOutcome::Done(outcome) = run_job(&spec, CancelFlag::new()) else {
            panic!("expected solve outcome");
        };
        assert_eq!(outcome.status, Status::NodeLimitReached);
    }

    #[test]
    fn enumerate_jobs_work() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1).expect("spawn pool");
        let id = queue.submit(JobSpec::Enumerate {
            entry,
            k: 1,
            top: 2,
        });
        let JobOutcome::Done(outcome) = queue.wait(id) else {
            panic!("expected an enumerate outcome");
        };
        assert_eq!(outcome.witnesses.len(), 2);
        assert_eq!(outcome.witnesses[0].len(), 5);
        pool.join();
    }

    #[test]
    fn count_jobs_work() {
        let entry = figure2_entry();
        let direct = kdc::counting::count_k_defective_cliques(entry.graph(), 1, 5);
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1).expect("spawn pool");
        let id = queue.submit(JobSpec::Count {
            entry,
            k: 1,
            min_size: 5,
        });
        let JobOutcome::Done(outcome) = queue.wait(id) else {
            panic!("expected a count outcome");
        };
        assert_eq!(outcome.counts.unwrap(), direct);
        pool.join();
    }

    #[test]
    fn submit_after_shutdown_fails_fast() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1).expect("spawn pool");
        queue.shutdown();
        pool.join();
        // No workers remain; wait() must still return, not block forever.
        let id = queue.submit(solve_spec(entry, 1, "kdc"));
        assert!(matches!(queue.wait(id), JobOutcome::Error(_)));
        let listed = queue.list();
        assert_eq!(listed.last().unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn cancelled_enumerate_is_not_reported_complete() {
        let mut rng = gen::seeded_rng(77);
        let cache = GraphCache::new();
        // Dense enough that full maximal enumeration far outlives the poll
        // loop below.
        let entry = cache.insert("dense", gen::gnp(80, 0.5, &mut rng));
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1).expect("spawn pool");
        let id = queue.submit(JobSpec::Enumerate {
            entry,
            k: 2,
            top: usize::MAX,
        });
        loop {
            if queue.list()[0].state != JobState::Queued {
                break;
            }
            std::thread::yield_now();
        }
        queue.cancel(id).unwrap();
        let JobOutcome::Done(outcome) = queue.wait(id) else {
            panic!("expected an enumerate outcome");
        };
        assert_eq!(
            outcome.status,
            Status::Cancelled,
            "truncated enumeration must not claim completion"
        );
        assert_eq!(queue.list()[0].state, JobState::Cancelled);
        pool.join();
    }

    #[test]
    fn try_submit_enforces_queue_depth() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new()); // no workers: jobs stay queued
        let first = queue
            .try_submit(solve_spec(entry.clone(), 1, "kdc"), 1)
            .expect("first job admitted");
        match queue.try_submit(solve_spec(entry.clone(), 1, "kdc"), 1) {
            Err(SubmitError::Busy { depth }) => assert_eq!(depth, 1),
            other => panic!("expected busy, got {other:?}"),
        }
        // A rejected submit leaves no JOBS row behind.
        assert_eq!(queue.list().len(), 1);
        // Unlimited depth (0) always admits.
        queue
            .try_submit(solve_spec(entry.clone(), 1, "kdc"), 0)
            .expect("unlimited depth admits");
        queue.cancel(first).unwrap();
        // Cancelling freed the slot.
        queue
            .try_submit(solve_spec(entry, 1, "kdc"), 2)
            .expect("slot freed after cancel");
        queue.shutdown();
    }

    #[test]
    fn try_submit_refuses_during_drain_and_shutdown() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1).expect("spawn pool");
        queue.drain();
        assert_eq!(
            queue.try_submit(solve_spec(entry.clone(), 1, "kdc"), 0),
            Err(SubmitError::ShuttingDown)
        );
        pool.join();
        assert_eq!(
            queue.try_submit(solve_spec(entry, 1, "kdc"), 0),
            Err(SubmitError::ShuttingDown)
        );
    }

    #[test]
    fn drain_finishes_queued_jobs_with_real_outcomes() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1).expect("spawn pool");
        let ids: Vec<u64> = (0..4)
            .map(|_| queue.submit(solve_spec(entry.clone(), 2, "kdc")))
            .collect();
        queue.drain();
        for id in ids {
            let JobOutcome::Done(outcome) = queue.wait(id) else {
                panic!("drained job {id} must carry its real outcome");
            };
            assert_eq!(outcome.size(), 6);
        }
        assert!(
            queue.list().iter().all(|j| j.state == JobState::Done),
            "drain must not cancel queued work"
        );
        pool.join();
    }

    #[test]
    fn watchdog_kills_limit_less_running_job() {
        let mut rng = gen::seeded_rng(42);
        let cache = GraphCache::new();
        let entry = cache.insert("hard", gen::gnp(220, 0.5, &mut rng));
        let queue = Arc::new(JobQueue::new());
        let pool = WorkerPool::new(queue.clone(), 1).expect("spawn pool");
        let id = queue.submit(solve_spec(entry.clone(), 12, "kdc"));
        loop {
            if queue.list()[0].state != JobState::Queued {
                break;
            }
            std::thread::yield_now();
        }
        // A sweep with a generous deadline leaves the young job alone.
        assert_eq!(queue.watchdog_sweep(Duration::from_secs(3600)), 0);
        // A zero deadline kills it: failed, reason=watchdog, typed error.
        loop {
            if queue.watchdog_sweep(Duration::ZERO) > 0 {
                break;
            }
            // The job may have finished already on a fast machine.
            if queue.list()[0].state != JobState::Running {
                pool.join();
                return;
            }
            std::thread::yield_now();
        }
        let JobOutcome::Error(msg) = queue.wait(id) else {
            panic!("watchdogged job must fail");
        };
        assert!(msg.contains("watchdog"), "{msg}");
        let info = &queue.list()[0];
        assert_eq!(info.state, JobState::Failed);
        assert_eq!(info.reason, Some("watchdog"));
        // Sweeps are one-shot per job: no double kill.
        assert_eq!(queue.watchdog_sweep(Duration::ZERO), 0);
        pool.join();
    }

    #[test]
    fn watchdog_exempts_jobs_with_their_own_budget() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let spec = JobSpec::Solve {
            entry,
            k: 2,
            preset: "kdc".into(),
            limit: Some(Duration::from_secs(60)),
            nodes: None,
            threads: 1,
            observer: None,
            trace: None,
        };
        assert!(spec.has_deadline());
        // No workers: force the record into Running by hand is not possible
        // from outside, so assert via the spec classification plus a queued
        // sweep (queued jobs are never swept regardless).
        queue.submit(spec);
        assert_eq!(queue.watchdog_sweep(Duration::ZERO), 0);
        queue.shutdown();
    }

    #[test]
    fn shutdown_cancels_queued_jobs() {
        let entry = figure2_entry();
        let queue = Arc::new(JobQueue::new());
        let id = queue.submit(solve_spec(entry, 1, "kdc"));
        let pool = WorkerPool::new(queue.clone(), 1).expect("spawn pool");
        queue.shutdown();
        pool.join();
        // The queued job was either finished by a racing worker or
        // cancelled by shutdown — never left pending.
        let state = queue.list()[0].state;
        assert!(
            state == JobState::Cancelled || state == JobState::Done,
            "job {id} left in {state:?}"
        );
    }
}
