//! The newline-delimited text protocol spoken by the daemon.
//!
//! Every request is one line; every response is one line starting with `OK`
//! or `ERR`. Keeping both sides single-line means a client is a `write` plus
//! a `read_line` — no framing, no state machine.
//!
//! ```text
//! LOAD <path> AS <name>
//! SOLVE <name> k=<K> [preset=<kdc|kdc_t|kdclub|kdbb|madec>] [limit=<seconds>]
//!       [nodes=<N>] [threads=<N>] [verbose=<0|1>]
//! MSOLVE <name> k=<LO>..<HI> [r=<R>] [preset=..] [limit=<seconds>]
//!        [nodes=<N>] [threads=<N>]
//! ENUMERATE <name> k=<K> top=<R>
//! COUNT <name> k=<K> [min=<S>]
//! STATS [<name>]
//! UNLOAD <name>
//! JOBS
//! CANCEL <id>
//! METRICS
//! TRACE <id>
//! FAULTS [<plan>|off]
//! SHUTDOWN [mode=<drain|abort>]
//! ```
//!
//! With `verbose=1`, a `SOLVE` response is preceded by zero or more `EVENT
//! key=value ...` lines streamed while the search runs (incumbent
//! improvements, reducer retightens, restarts); the final line is the usual
//! `OK`/`ERR`. Clients must read until a non-`EVENT` line.
//!
//! `MSOLVE` answers a whole batched k-sweep as **one job**: the daemon
//! plans `k = LO..=HI` (inclusive; `k=<K>` alone means a single k) as a
//! [`kdc_api::Query::Batch`] sharing one universe, cross-`k` witness seeds
//! and upper-bound caps, then streams one `RESULT idx=<I> k=<K> size=<S>
//! status=<..>` line per sub-query — in completion order, before the final
//! `OK` — so clients see answers as they land. Clients must read until a
//! non-`RESULT` line. With `r=<R>`, every sub-query enumerates a top-`R`
//! pool instead of solving for one maximum. The final `OK` reports the
//! folded status plus the batch's shared-work counters; the witness vertex
//! sets are retrievable per `k` via follow-up `SOLVE` calls, which answer
//! from the proven-optimal memo without searching. A running `MSOLVE` is
//! one job: one `CANCEL <id>` aborts the remaining sub-queries, and a
//! draining shutdown lets the whole sweep finish.
//!
//! `METRICS` similarly streams the process-global registry in Prometheus
//! text exposition format, one `METRIC <sample-or-header>` line per
//! exposition line, terminated by `OK series=<N>`; clients must read until
//! a non-`METRIC` line. `TRACE <id>` returns a solve job's recorded phase
//! spans as a single-line chrome://tracing JSON array.
//!
//! Verbs are case-insensitive; `<path>` and `<name>` must be free of
//! whitespace (and, because `key=value` tokens are options, free of `=`).
//! Options may appear in any order after the positional arguments;
//! unrecognized option keys are rejected, not ignored, so a typo like
//! `limt=5` fails fast instead of silently running without a deadline.
//!
//! ## Overload (`BUSY`) replies
//!
//! A daemon running with admission limits answers overload with a **typed
//! busy error** instead of queueing unboundedly:
//!
//! ```text
//! ERR busy queue_depth=<N> retry_after_ms=<M>     (job queue at capacity)
//! ERR busy active_conns=<N> retry_after_ms=<M>    (connection cap reached)
//! ```
//!
//! Referred to as `BUSY` in operational docs, it is still an `ERR` line on
//! the wire so old clients fail closed. `retry_after_ms` is a backoff hint;
//! `kdc client --retries` and [`crate::server::request_with_retry`] retry
//! *only* on connect failure and `BUSY` (never on other errors, which are
//! deterministic).
//!
//! ## Shutdown modes
//!
//! `SHUTDOWN mode=drain` stops accepting connections, lets queued and
//! running jobs finish (their waiters get real results and in-flight
//! `EVENT` streams complete), then exits. `SHUTDOWN mode=abort` (the
//! default, and the pre-`mode=` behavior) cancels every outstanding job
//! cooperatively and exits as soon as the workers notice.
//!
//! ## Fault injection (`FAULTS`, debug builds only)
//!
//! `FAULTS` reports the armed fault plan, `FAULTS <plan>` installs one
//! (grammar: `point:action[:trigger]` rules joined by commas — see the
//! `kdc_faults` crate docs), `FAULTS off` disarms everything. Release
//! builds answer `ERR` so production daemons cannot be fault-armed over
//! the wire; the `KDC_FAULTS` environment variable works in any build.

use std::collections::HashMap;
use std::fmt::Display;
use std::time::Duration;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `LOAD <path> AS <name>` — parse a graph file into the cache.
    Load {
        /// Filesystem path of the graph (DIMACS/METIS/edge list by extension).
        path: String,
        /// Cache key the graph is stored under.
        name: String,
    },
    /// `SOLVE <name> k=<K> [preset=..] [limit=..] [nodes=..] [threads=..]
    /// [verbose=..]`.
    Solve {
        /// Cache key of the graph to solve on.
        graph: String,
        /// The k of the k-defective clique.
        k: usize,
        /// Solver preset (`kdc` when omitted).
        preset: Option<String>,
        /// Per-job wall-clock deadline, validated at the protocol edge via
        /// [`kdc::config::parse_time_limit_arg`].
        limit: Option<Duration>,
        /// Per-job branch-and-bound node limit, validated via
        /// [`kdc::config::parse_node_limit_arg`].
        nodes: Option<u64>,
        /// Solver threads: 1 = sequential, 0 = all cores, N = N-thread
        /// ego decomposition.
        threads: usize,
        /// Stream `EVENT` lines while the search runs.
        verbose: bool,
    },
    /// `MSOLVE <name> k=<LO>..<HI> [r=..] [preset=..] [limit=..]
    /// [nodes=..] [threads=..]` — a batched k-sweep answered as one job,
    /// streaming `RESULT` lines per sub-query before the final `OK`.
    MSolve {
        /// Cache key of the graph to sweep on.
        graph: String,
        /// First k of the inclusive sweep.
        k_lo: usize,
        /// Last k of the inclusive sweep (`k_lo` for a single-k batch).
        k_hi: usize,
        /// When set, each sub-query enumerates a top-`r` pool instead of
        /// solving for one maximum witness.
        r: Option<usize>,
        /// Solver preset (`kdc` when omitted).
        preset: Option<String>,
        /// Batch-wide wall-clock deadline (shared by all sub-queries).
        limit: Option<Duration>,
        /// Per-sub-query branch-and-bound node limit.
        nodes: Option<u64>,
        /// Solver threads per sub-solve (same semantics as `SOLVE`).
        threads: usize,
    },
    /// `ENUMERATE <name> k=<K> top=<R>` — the r largest maximal k-defective
    /// cliques.
    Enumerate {
        /// Cache key of the graph.
        graph: String,
        /// The k of the k-defective clique.
        k: usize,
        /// Pool size r.
        top: usize,
    },
    /// `COUNT <name> k=<K> [min=<S>]` — exact per-size counts of
    /// k-defective cliques with at least `min` vertices.
    Count {
        /// Cache key of the graph.
        graph: String,
        /// The k of the k-defective clique.
        k: usize,
        /// Smallest size to count (0 when omitted).
        min_size: usize,
    },
    /// `STATS [<name>]` — per-graph cache statistics, or server-wide when no
    /// name is given.
    Stats {
        /// Cache key, or `None` for the server-wide summary.
        graph: Option<String>,
    },
    /// `UNLOAD <name>` — drop a graph (in-flight jobs keep their `Arc`).
    Unload {
        /// Cache key to drop.
        graph: String,
    },
    /// `JOBS` — list every job the daemon has seen, newest last.
    Jobs,
    /// `CANCEL <id>` — cooperatively cancel a queued or running job.
    Cancel {
        /// Job id as reported by `JOBS`.
        id: u64,
    },
    /// `METRICS` — stream the global registry in Prometheus text format.
    Metrics,
    /// `TRACE <id>` — a solve job's phase spans as chrome://tracing JSON.
    Trace {
        /// Job id as reported by `JOBS`.
        id: u64,
    },
    /// `FAULTS [<plan>|off]` — inspect or install the fault-injection plan
    /// (debug builds only; release daemons answer `ERR`).
    Faults {
        /// `None` = report status; `Some("off")` = disarm; any other value
        /// is a plan in the `kdc_faults` grammar.
        plan: Option<String>,
    },
    /// `SHUTDOWN [mode=drain|abort]` — stop accepting connections and exit,
    /// either finishing outstanding jobs (`drain`) or cancelling them
    /// (`abort`, the default).
    Shutdown {
        /// Selected shutdown mode.
        mode: ShutdownMode,
    },
}

/// How `SHUTDOWN` treats outstanding jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Finish queued and running jobs (and their event streams) first.
    Drain,
    /// Cancel everything via the cooperative flags and exit promptly.
    Abort,
}

impl ShutdownMode {
    /// Lower-case protocol token.
    pub fn as_str(self) -> &'static str {
        match self {
            ShutdownMode::Drain => "drain",
            ShutdownMode::Abort => "abort",
        }
    }
}

/// Splits `tokens` into positionals and `key=value` options.
fn split_options(tokens: &[&str]) -> (Vec<String>, HashMap<String, String>) {
    let mut positional = Vec::new();
    let mut options = HashMap::new();
    for t in tokens {
        match t.split_once('=') {
            Some((key, value)) => {
                options.insert(key.to_ascii_lowercase(), value.to_string());
            }
            None => positional.push(t.to_string()),
        }
    }
    (positional, options)
}

fn parse_option<T: std::str::FromStr>(
    options: &HashMap<String, String>,
    key: &str,
) -> Result<Option<T>, String> {
    match options.get(key) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid value {raw:?} for {key}=")),
    }
}

/// Widest `k=<LO>..<HI>` sweep `MSOLVE` accepts: a protocol-edge guard so
/// a hostile `k=0..99999999` is an `ERR` line, not a 100M-entry batch.
pub const MAX_MSOLVE_SWEEP: usize = 256;

/// Parses `MSOLVE`'s `k=` value: `<LO>..<HI>` (inclusive) or a single
/// `<K>` (meaning `K..K`).
fn parse_k_range(raw: &str) -> Result<(usize, usize), String> {
    let (lo, hi) = match raw.split_once("..") {
        Some((lo, hi)) => {
            let parse = |s: &str, side: &str| -> Result<usize, String> {
                s.parse()
                    .map_err(|_| format!("invalid {side} bound {s:?} in k={raw}"))
            };
            (parse(lo, "lower")?, parse(hi, "upper")?)
        }
        None => {
            let k = raw
                .parse()
                .map_err(|_| format!("invalid value {raw:?} for k= (want <K> or <LO>..<HI>)"))?;
            (k, k)
        }
    };
    if hi < lo {
        return Err(format!("empty k range {raw} (upper bound below lower)"));
    }
    if hi - lo + 1 > MAX_MSOLVE_SWEEP {
        return Err(format!(
            "k range {raw} spans {} values (max {MAX_MSOLVE_SWEEP})",
            hi - lo + 1
        ));
    }
    Ok((lo, hi))
}

/// Parses one request line into a [`Command`].
pub fn parse_command(line: &str) -> Result<Command, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let Some((verb, rest)) = tokens.split_first() else {
        return Err("empty command".to_string());
    };
    let verb = verb.to_ascii_uppercase();
    // FAULTS is handled before option splitting: a fault plan like
    // `conn_read:delay=5:p=0.1` is full of `=` signs that are part of the
    // plan grammar, not protocol options.
    if verb == "FAULTS" {
        return match rest {
            [] => Ok(Command::Faults { plan: None }),
            [plan] => Ok(Command::Faults {
                plan: Some(plan.to_string()),
            }),
            _ => Err("usage: FAULTS [<plan>|off]".to_string()),
        };
    }
    let (positional, options) = split_options(rest);
    let positional_count = |want: usize, usage: &str| -> Result<(), String> {
        if positional.len() == want {
            Ok(())
        } else {
            Err(format!("usage: {usage}"))
        }
    };
    let known_options = |allowed: &[&str]| -> Result<(), String> {
        for key in options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(if allowed.is_empty() {
                    format!("{verb} takes no key=value options (got {key}=)")
                } else {
                    format!("unknown option {key}= (allowed: {})", allowed.join(", "))
                });
            }
        }
        Ok(())
    };
    match verb.as_str() {
        "LOAD" => {
            // `AS` is a positional keyword: LOAD <path> AS <name>.
            known_options(&[])?;
            positional_count(3, "LOAD <path> AS <name>")?;
            if !positional[1].eq_ignore_ascii_case("as") {
                return Err("usage: LOAD <path> AS <name>".to_string());
            }
            Ok(Command::Load {
                path: positional[0].clone(),
                name: positional[2].clone(),
            })
        }
        "SOLVE" => {
            known_options(&["k", "preset", "limit", "nodes", "threads", "verbose"])?;
            positional_count(
                1,
                "SOLVE <name> k=<K> [preset=..] [limit=..] [nodes=..] [threads=..] [verbose=..]",
            )?;
            let k = parse_option::<usize>(&options, "k")?.ok_or("SOLVE requires k=<K>")?;
            // Hostile limits (negative/NaN/inf/huge/zero-node) are rejected
            // at the protocol edge — through the same shared parsers the
            // CLI uses — where they still produce an ERR line.
            let limit = options
                .get("limit")
                .map(|raw| kdc::config::parse_time_limit_arg(raw))
                .transpose()?;
            let nodes = options
                .get("nodes")
                .map(|raw| kdc::config::parse_node_limit_arg(raw))
                .transpose()?;
            let verbose = match parse_option::<u8>(&options, "verbose")?.unwrap_or(0) {
                0 => false,
                1 => true,
                other => return Err(format!("verbose= must be 0 or 1 (got {other})")),
            };
            Ok(Command::Solve {
                graph: positional[0].clone(),
                k,
                preset: options.get("preset").cloned(),
                limit,
                nodes,
                threads: parse_option(&options, "threads")?.unwrap_or(1),
                verbose,
            })
        }
        "MSOLVE" => {
            known_options(&["k", "r", "preset", "limit", "nodes", "threads"])?;
            positional_count(
                1,
                "MSOLVE <name> k=<LO>..<HI> [r=..] [preset=..] [limit=..] [nodes=..] \
                 [threads=..]",
            )?;
            let raw = options.get("k").ok_or("MSOLVE requires k=<LO>..<HI>")?;
            let (k_lo, k_hi) = parse_k_range(raw)?;
            let limit = options
                .get("limit")
                .map(|raw| kdc::config::parse_time_limit_arg(raw))
                .transpose()?;
            let nodes = options
                .get("nodes")
                .map(|raw| kdc::config::parse_node_limit_arg(raw))
                .transpose()?;
            let r = parse_option::<usize>(&options, "r")?;
            if r == Some(0) {
                return Err("r= must be positive".to_string());
            }
            Ok(Command::MSolve {
                graph: positional[0].clone(),
                k_lo,
                k_hi,
                r,
                preset: options.get("preset").cloned(),
                limit,
                nodes,
                threads: parse_option(&options, "threads")?.unwrap_or(1),
            })
        }
        "ENUMERATE" => {
            known_options(&["k", "top"])?;
            positional_count(1, "ENUMERATE <name> k=<K> top=<R>")?;
            let k = parse_option::<usize>(&options, "k")?.ok_or("ENUMERATE requires k=<K>")?;
            let top =
                parse_option::<usize>(&options, "top")?.ok_or("ENUMERATE requires top=<R>")?;
            if top == 0 {
                return Err("top= must be positive".to_string());
            }
            Ok(Command::Enumerate {
                graph: positional[0].clone(),
                k,
                top,
            })
        }
        "COUNT" => {
            known_options(&["k", "min"])?;
            positional_count(1, "COUNT <name> k=<K> [min=<S>]")?;
            let k = parse_option::<usize>(&options, "k")?.ok_or("COUNT requires k=<K>")?;
            Ok(Command::Count {
                graph: positional[0].clone(),
                k,
                min_size: parse_option(&options, "min")?.unwrap_or(0),
            })
        }
        "STATS" => {
            known_options(&[])?;
            if positional.len() > 1 {
                return Err("usage: STATS [<name>]".to_string());
            }
            Ok(Command::Stats {
                graph: positional.first().cloned(),
            })
        }
        "UNLOAD" => {
            known_options(&[])?;
            positional_count(1, "UNLOAD <name>")?;
            Ok(Command::Unload {
                graph: positional[0].clone(),
            })
        }
        "JOBS" => {
            known_options(&[])?;
            positional_count(0, "JOBS")?;
            Ok(Command::Jobs)
        }
        "CANCEL" => {
            known_options(&[])?;
            positional_count(1, "CANCEL <id>")?;
            let id = positional[0]
                .parse()
                .map_err(|_| format!("invalid job id {:?}", positional[0]))?;
            Ok(Command::Cancel { id })
        }
        "METRICS" => {
            known_options(&[])?;
            positional_count(0, "METRICS")?;
            Ok(Command::Metrics)
        }
        "TRACE" => {
            known_options(&[])?;
            positional_count(1, "TRACE <id>")?;
            let id = positional[0]
                .parse()
                .map_err(|_| format!("invalid job id {:?}", positional[0]))?;
            Ok(Command::Trace { id })
        }
        "SHUTDOWN" => {
            known_options(&["mode"])?;
            positional_count(0, "SHUTDOWN [mode=drain|abort]")?;
            let mode = match options.get("mode").map(String::as_str) {
                None | Some("abort") => ShutdownMode::Abort,
                Some("drain") => ShutdownMode::Drain,
                Some(other) => {
                    return Err(format!("mode= must be drain or abort (got {other})"));
                }
            };
            Ok(Command::Shutdown { mode })
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Builder for one-line `OK key=value ...` responses.
#[derive(Debug, Default)]
pub struct OkLine {
    fields: Vec<(String, String)>,
}

impl OkLine {
    /// An empty `OK` response.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `key=value` field (insertion order is preserved).
    pub fn field(mut self, key: &str, value: impl Display) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Renders the line (without trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::from("OK");
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out
    }
}

/// Renders an `ERR` response line; newlines in the message are flattened so
/// the response stays a single line.
pub fn err_line(msg: &str) -> String {
    format!("ERR {}", msg.replace('\n', " "))
}

/// Renders a vertex list as `a,b,c` (the protocol's list syntax).
pub fn render_vertices(vertices: &[u32]) -> String {
    let items: Vec<String> = vertices.iter().map(u32::to_string).collect();
    items.join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_load() {
        assert_eq!(
            parse_command("LOAD /tmp/g.clq AS g1").unwrap(),
            Command::Load {
                path: "/tmp/g.clq".into(),
                name: "g1".into()
            }
        );
        // Case-insensitive verb and AS keyword.
        assert!(parse_command("load x as y").is_ok());
        assert!(parse_command("LOAD /tmp/g.clq g1").is_err(), "missing AS");
        assert!(parse_command("LOAD g1").is_err());
    }

    #[test]
    fn parses_solve_with_options_in_any_order() {
        let cmd = parse_command("SOLVE g1 limit=2.5 k=3 threads=4 preset=kdbb nodes=500 verbose=1")
            .unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                graph: "g1".into(),
                k: 3,
                preset: Some("kdbb".into()),
                limit: Some(Duration::from_secs_f64(2.5)),
                nodes: Some(500),
                threads: 4,
                verbose: true,
            }
        );
        let minimal = parse_command("SOLVE g1 k=0").unwrap();
        assert_eq!(
            minimal,
            Command::Solve {
                graph: "g1".into(),
                k: 0,
                preset: None,
                limit: None,
                nodes: None,
                threads: 1,
                verbose: false,
            }
        );
    }

    #[test]
    fn parses_msolve_sweeps() {
        let cmd = parse_command("MSOLVE g1 k=0..4 r=3 preset=kdc_t limit=2.5 nodes=500 threads=2")
            .unwrap();
        assert_eq!(
            cmd,
            Command::MSolve {
                graph: "g1".into(),
                k_lo: 0,
                k_hi: 4,
                r: Some(3),
                preset: Some("kdc_t".into()),
                limit: Some(Duration::from_secs_f64(2.5)),
                nodes: Some(500),
                threads: 2,
            }
        );
        // A bare k is a single-entry sweep.
        let single = parse_command("msolve g1 k=3").unwrap();
        assert_eq!(
            single,
            Command::MSolve {
                graph: "g1".into(),
                k_lo: 3,
                k_hi: 3,
                r: None,
                preset: None,
                limit: None,
                nodes: None,
                threads: 1,
            }
        );
    }

    #[test]
    fn msolve_rejects_hostile_ranges() {
        assert!(parse_command("MSOLVE g1").is_err(), "k= is required");
        assert!(parse_command("MSOLVE g1 k=4..0").is_err(), "empty range");
        assert!(
            parse_command("MSOLVE g1 k=0..99999999").is_err(),
            "too wide"
        );
        assert!(parse_command("MSOLVE g1 k=a..b").is_err());
        assert!(parse_command("MSOLVE g1 k=1..").is_err());
        assert!(parse_command("MSOLVE g1 k=1..2 r=0").is_err(), "zero pool");
        assert!(
            parse_command("MSOLVE g1 k=1..2 verbose=1").is_err(),
            "MSOLVE streams RESULT lines unconditionally; verbose= is not an option"
        );
        // The widest allowed sweep parses; one wider does not.
        assert!(parse_command(&format!("MSOLVE g1 k=0..{}", MAX_MSOLVE_SWEEP - 1)).is_ok());
        assert!(parse_command(&format!("MSOLVE g1 k=0..{MAX_MSOLVE_SWEEP}")).is_err());
    }

    #[test]
    fn verbose_option_is_strictly_binary() {
        assert!(parse_command("SOLVE g k=1 verbose=0").is_ok());
        assert!(parse_command("SOLVE g k=1 verbose=1").is_ok());
        for bad in ["2", "yes", "true", "-1"] {
            assert!(
                parse_command(&format!("SOLVE g k=1 verbose={bad}")).is_err(),
                "verbose={bad} must be rejected"
            );
        }
    }

    #[test]
    fn hostile_node_limits_are_rejected_at_parse_time() {
        assert!(parse_command("SOLVE g k=1 nodes=1").is_ok());
        assert!(parse_command("SOLVE g k=1 nodes=1000000").is_ok());
        for bad in ["0", "-5", "1.5", "1e9", "many", "18446744073709551616"] {
            assert!(
                parse_command(&format!("SOLVE g k=1 nodes={bad}")).is_err(),
                "nodes={bad} must be rejected"
            );
        }
    }

    #[test]
    fn parses_count() {
        assert_eq!(
            parse_command("COUNT g k=2 min=5").unwrap(),
            Command::Count {
                graph: "g".into(),
                k: 2,
                min_size: 5
            }
        );
        assert_eq!(
            parse_command("count g k=0").unwrap(),
            Command::Count {
                graph: "g".into(),
                k: 0,
                min_size: 0
            }
        );
        assert!(parse_command("COUNT g").is_err(), "k required");
        assert!(parse_command("COUNT g k=1 top=3").is_err(), "bad option");
    }

    #[test]
    fn solve_requires_k() {
        assert!(parse_command("SOLVE g1").is_err());
        assert!(parse_command("SOLVE g1 k=banana").is_err());
        assert!(parse_command("SOLVE").is_err());
    }

    #[test]
    fn unknown_option_keys_are_rejected_not_ignored() {
        // A typo'd option must fail fast, not silently drop the deadline.
        assert!(parse_command("SOLVE g k=2 limt=5").is_err());
        assert!(parse_command("SOLVE g k=2 thread=4").is_err());
        assert!(parse_command("ENUMERATE g k=1 top=2 preset=kdc").is_err());
        assert!(parse_command("JOBS verbose=1").is_err());
        assert!(parse_command("SHUTDOWN now=1").is_err());
        assert!(
            parse_command("LOAD /tmp/a=b.clq AS g").is_err(),
            "= in path"
        );
    }

    #[test]
    fn hostile_limits_are_rejected_at_parse_time() {
        assert!(parse_command("SOLVE g k=1 limit=2.5").is_ok());
        assert!(parse_command("SOLVE g k=1 limit=0").is_ok());
        for bad in ["-1", "NaN", "inf", "-inf", "1e30"] {
            assert!(
                parse_command(&format!("SOLVE g k=1 limit={bad}")).is_err(),
                "limit={bad} must be rejected"
            );
        }
    }

    #[test]
    fn parses_enumerate_stats_unload() {
        assert_eq!(
            parse_command("ENUMERATE g k=1 top=5").unwrap(),
            Command::Enumerate {
                graph: "g".into(),
                k: 1,
                top: 5
            }
        );
        assert!(parse_command("ENUMERATE g k=1").is_err(), "top required");
        assert!(parse_command("ENUMERATE g k=1 top=0").is_err());
        assert_eq!(
            parse_command("STATS g").unwrap(),
            Command::Stats {
                graph: Some("g".into())
            }
        );
        assert_eq!(
            parse_command("STATS").unwrap(),
            Command::Stats { graph: None }
        );
        assert_eq!(
            parse_command("UNLOAD g").unwrap(),
            Command::Unload { graph: "g".into() }
        );
    }

    #[test]
    fn parses_control_commands() {
        assert_eq!(parse_command("JOBS").unwrap(), Command::Jobs);
        assert_eq!(
            parse_command("CANCEL 7").unwrap(),
            Command::Cancel { id: 7 }
        );
        assert!(parse_command("CANCEL seven").is_err());
        assert_eq!(
            parse_command("shutdown").unwrap(),
            Command::Shutdown {
                mode: ShutdownMode::Abort
            }
        );
        assert!(parse_command("").is_err());
        assert!(parse_command("FROBNICATE").is_err());
    }

    #[test]
    fn parses_shutdown_modes() {
        assert_eq!(
            parse_command("SHUTDOWN mode=drain").unwrap(),
            Command::Shutdown {
                mode: ShutdownMode::Drain
            }
        );
        assert_eq!(
            parse_command("SHUTDOWN mode=abort").unwrap(),
            Command::Shutdown {
                mode: ShutdownMode::Abort
            }
        );
        assert!(parse_command("SHUTDOWN mode=later").is_err());
        assert!(parse_command("SHUTDOWN drain").is_err(), "mode= required");
    }

    #[test]
    fn parses_faults_without_option_splitting() {
        assert_eq!(
            parse_command("FAULTS").unwrap(),
            Command::Faults { plan: None }
        );
        assert_eq!(
            parse_command("faults off").unwrap(),
            Command::Faults {
                plan: Some("off".into())
            }
        );
        // `=` inside the plan must survive verbatim (it is plan grammar,
        // not a protocol option).
        assert_eq!(
            parse_command("FAULTS conn_read:delay=5:p=0.1,accept:error").unwrap(),
            Command::Faults {
                plan: Some("conn_read:delay=5:p=0.1,accept:error".into())
            }
        );
        assert!(parse_command("FAULTS a b").is_err(), "one plan token max");
    }

    #[test]
    fn parses_observability_commands() {
        assert_eq!(parse_command("METRICS").unwrap(), Command::Metrics);
        assert_eq!(parse_command("metrics").unwrap(), Command::Metrics);
        assert!(parse_command("METRICS all").is_err());
        assert_eq!(parse_command("TRACE 3").unwrap(), Command::Trace { id: 3 });
        assert!(parse_command("TRACE").is_err(), "id required");
        assert!(parse_command("TRACE three").is_err());
        assert!(parse_command("TRACE 3 verbose=1").is_err());
    }

    #[test]
    fn ok_line_renders_in_order() {
        let line = OkLine::new()
            .field("job", 3)
            .field("status", "optimal")
            .field("size", 6)
            .render();
        assert_eq!(line, "OK job=3 status=optimal size=6");
        assert_eq!(OkLine::new().render(), "OK");
    }

    #[test]
    fn err_line_is_single_line() {
        assert_eq!(err_line("no such\ngraph"), "ERR no such graph");
    }

    #[test]
    fn vertex_list_syntax() {
        assert_eq!(render_vertices(&[3, 1, 4]), "3,1,4");
        assert_eq!(render_vertices(&[]), "");
    }
}
