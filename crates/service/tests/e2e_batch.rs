//! End-to-end tests for the daemon's batched-execution surface: `MSOLVE`
//! streaming `RESULT` lines, a mid-batch `CANCEL` aborting the whole sweep
//! as one job, and `SHUTDOWN mode=drain` letting a running batch finish.

use kdc::{Solver, SolverConfig};
use kdc_graph::{gen, named, Graph};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

/// A persistent client connection: send one line, read one line.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        response.trim_end().to_string()
    }
}

/// Extracts `key=` from an `OK key=value ...` response line.
fn field<'a>(response: &'a str, key: &str) -> &'a str {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no field {key}= in {response:?}"))
}

fn write_graph(name: &str, g: &Graph) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdc_service_e2e_batch_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    kdc_graph::io::write_dimacs(g, &path).unwrap();
    path
}

#[test]
fn msolve_streams_results_before_final_ok() {
    let g = named::figure2();
    let path = write_graph("fig2_msolve.clq", &g);
    // Ground truth: one fresh solver per k, same preset.
    let direct: Vec<usize> = (0..=2)
        .map(|k| Solver::new(&g, k, SolverConfig::kdc()).solve().size())
        .collect();

    let handle = kdc_service::Server::bind("127.0.0.1:0", 2)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr);
    let resp = client.send(&format!("LOAD {} AS fig2", path.display()));
    assert_eq!(field(&resp, "loaded"), "fig2", "{resp}");

    // Raw line-by-line read: RESULT* then the final OK.
    client.writer.write_all(b"MSOLVE fig2 k=0..2\n").unwrap();
    client.writer.flush().unwrap();
    let mut results: Vec<String> = Vec::new();
    let final_line = loop {
        let mut line = String::new();
        client.reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        if line.starts_with("RESULT ") {
            results.push(line);
        } else {
            break line;
        }
    };
    // One RESULT per sub-query, streamed in sweep (ascending-k) order,
    // each matching the fresh individual solve.
    assert_eq!(results.len(), 3, "{results:?}");
    for (k, line) in results.iter().enumerate() {
        assert_eq!(field(line, "idx"), k.to_string(), "{line}");
        assert_eq!(field(line, "k"), k.to_string(), "{line}");
        assert_eq!(field(line, "size"), direct[k].to_string(), "{line}");
        assert_eq!(field(line, "status"), "optimal", "{line}");
    }
    assert_eq!(field(&final_line, "status"), "optimal", "{final_line}");
    assert_eq!(field(&final_line, "subs"), "3", "{final_line}");
    let sizes: Vec<String> = direct.iter().map(usize::to_string).collect();
    assert_eq!(field(&final_line, "sizes"), sizes.join(","), "{final_line}");
    // The shared-work counters are reported on the OK line; on an
    // ascending sweep with k>0 repeats of the k=0 optimum size, at least
    // the seeding counter must have fired.
    assert!(
        field(&final_line, "witness_seeds").parse::<u64>().unwrap() >= 1,
        "{final_line}"
    );
    let _ = field(&final_line, "ctcp_shares");
    let _ = field(&final_line, "memo_dedups");

    // The sweep memoized each k: a follow-up SOLVE answers from the memo
    // without searching, which is how clients retrieve the vertex sets.
    let resp = client.send("SOLVE fig2 k=2");
    assert_eq!(field(&resp, "cached"), "true", "{resp}");
    assert_eq!(field(&resp, "size"), direct[2].to_string(), "{resp}");
    let verts: Vec<u32> = field(&resp, "vertices")
        .split(',')
        .map(|v| v.parse().unwrap())
        .collect();
    assert!(g.is_k_defective_clique(&verts, 2), "{resp}");

    // The one-shot request helper folds RESULT lines into the response.
    let resp = kdc_service::request(&addr, "MSOLVE fig2 k=1..2 r=2").unwrap();
    let lines: Vec<&str> = resp.lines().collect();
    assert_eq!(lines.len(), 3, "{resp}");
    assert!(lines[0].starts_with("RESULT "), "{resp}");
    assert!(lines.last().unwrap().starts_with("OK "), "{resp}");

    // Protocol-edge failures stay single-line ERRs.
    let resp = client.send("MSOLVE fig2 k=0..2 preset=nope");
    assert!(resp.starts_with("ERR "), "{resp}");
    let resp = client.send("MSOLVE nosuch k=0..2");
    assert!(resp.starts_with("ERR "), "{resp}");

    client.send("SHUTDOWN");
    handle.join().expect("clean server exit");
}

/// One `CANCEL <id>` aborts the whole sweep: the batch is a single job,
/// and its final OK reports honest `cancelled` statuses.
#[test]
fn cancel_aborts_whole_batch_as_one_job() {
    let mut rng = gen::seeded_rng(321);
    let hard = gen::gnp(220, 0.5, &mut rng);
    let ph = write_graph("batch_hard.clq", &hard);

    let handle = kdc_service::Server::bind("127.0.0.1:0", 2)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut control = Client::connect(&addr);
    let resp = control.send(&format!("LOAD {} AS hard", ph.display()));
    assert_eq!(field(&resp, "loaded"), "hard", "{resp}");

    let reply = std::thread::scope(|scope| {
        let a = addr.clone();
        let sweep = scope.spawn(move || kdc_service::request(&a, "MSOLVE hard k=12..14").unwrap());
        // Poll JOBS until the batch job is running, then cancel it by id.
        let id = loop {
            let jobs = control.send("JOBS");
            let entries = field(&jobs, "jobs");
            if let Some(entry) = entries
                .split(';')
                .find(|e| e.contains(":running:batch(hard,k=12..14"))
            {
                break entry.split(':').next().unwrap().to_string();
            }
            std::thread::yield_now();
        };
        let resp = control.send(&format!("CANCEL {id}"));
        assert_eq!(field(&resp, "cancelled"), id, "{resp}");
        let reply = sweep.join().unwrap();
        // The queue records the whole sweep as one cancelled job.
        let jobs = control.send("JOBS");
        assert!(
            field(&jobs, "jobs").contains(&format!("{id}:cancelled:batch(hard")),
            "{jobs}"
        );
        reply
    });
    let verdict = reply.lines().last().unwrap();
    assert_eq!(field(verdict, "status"), "cancelled", "{reply}");
    assert_eq!(field(verdict, "subs"), "3", "{reply}");

    control.send("SHUTDOWN");
    handle.join().expect("clean server exit");
}

/// `SHUTDOWN mode=drain` lets a running batch finish its whole sweep (here
/// bounded by per-sub-query node budgets) instead of cutting it off.
#[test]
fn drain_shutdown_lets_running_batch_finish() {
    let mut rng = gen::seeded_rng(654);
    let hard = gen::gnp(220, 0.5, &mut rng);
    let ph = write_graph("batch_drain.clq", &hard);
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut control = Client::connect(&addr);
    let resp = control.send(&format!("LOAD {} AS hard", ph.display()));
    assert_eq!(field(&resp, "loaded"), "hard", "{resp}");

    let reply = std::thread::scope(|scope| {
        let a = addr.clone();
        let sweep = scope
            .spawn(move || kdc_service::request(&a, "MSOLVE hard k=12..13 nodes=20000").unwrap());
        loop {
            let jobs = control.send("JOBS");
            if field(&jobs, "jobs").contains(":running:batch(hard") {
                break;
            }
            std::thread::yield_now();
        }
        let resp = control.send("SHUTDOWN mode=drain");
        assert_eq!(resp, "OK shutdown=ok mode=drain");
        sweep.join().unwrap()
    });
    // Every sub-query ran to its node budget — none were cancelled by the
    // shutdown — and the RESULT stream completed before the final line.
    let verdict = reply.lines().last().unwrap();
    assert_eq!(field(verdict, "status"), "node-limit", "{reply}");
    assert_eq!(field(verdict, "subs"), "2", "{reply}");
    assert_eq!(
        reply.lines().filter(|l| l.starts_with("RESULT ")).count(),
        2,
        "{reply}"
    );
    handle.join().expect("clean server exit");
}
