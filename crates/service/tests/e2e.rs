//! End-to-end smoke test for the solver daemon: one `Server` on an
//! ephemeral loopback port drives a full multi-request session —
//! LOAD → two *concurrent* SOLVEs on different cached graphs → a CANCEL of
//! a long-running job → warm-path re-solve → SHUTDOWN — and every solve
//! answer is checked against the direct [`kdc::Solver`] API on the same
//! inputs.

use kdc::{Solver, SolverConfig};
use kdc_graph::{gen, named, Graph};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

/// A persistent client connection: send one line, read one line.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        response.trim_end().to_string()
    }
}

/// Extracts `key=` from an `OK key=value ...` response line.
fn field<'a>(response: &'a str, key: &str) -> &'a str {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no field {key}= in {response:?}"))
}

fn write_graph(name: &str, g: &Graph) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdc_service_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    kdc_graph::io::write_dimacs(g, &path).unwrap();
    path
}

#[test]
fn full_session_on_ephemeral_port() {
    // Two easy-but-distinct graphs for the concurrent solves, one dense
    // graph hard enough that its solve must be cancelled, not awaited.
    let g1 = named::figure2();
    let mut rng = gen::seeded_rng(321);
    let (g2, _) = gen::planted_defective_clique(120, 12, 1, 0.05, &mut rng);
    let hard = gen::gnp(220, 0.5, &mut rng);
    let p1 = write_graph("g1.clq", &g1);
    let p2 = write_graph("g2.clq", &g2);
    let ph = write_graph("hard.clq", &hard);

    // Ground truth from the direct solver API on the same inputs.
    let direct1 = Solver::new(&g1, 2, SolverConfig::kdc()).solve();
    let direct2 = Solver::new(&g2, 1, SolverConfig::kdc()).solve();

    let handle = kdc_service::Server::bind("127.0.0.1:0", 2)
        .expect("bind ephemeral port")
        .spawn();
    let addr = handle.addr().to_string();

    // ---- LOAD both graphs over a control connection --------------------
    let mut control = Client::connect(&addr);
    let resp = control.send(&format!("LOAD {} AS g1", p1.display()));
    assert_eq!(field(&resp, "loaded"), "g1", "{resp}");
    assert_eq!(field(&resp, "n"), "12", "{resp}");
    let resp = control.send(&format!("LOAD {} AS g2", p2.display()));
    assert_eq!(field(&resp, "loaded"), "g2", "{resp}");

    // ---- two concurrent SOLVEs on different cached graphs --------------
    let (r1, r2) = std::thread::scope(|scope| {
        let addr1 = addr.clone();
        let addr2 = addr.clone();
        let t1 = scope.spawn(move || Client::connect(&addr1).send("SOLVE g1 k=2"));
        let t2 = scope.spawn(move || Client::connect(&addr2).send("SOLVE g2 k=1 threads=2"));
        (t1.join().unwrap(), t2.join().unwrap())
    });
    assert_eq!(field(&r1, "status"), "optimal", "{r1}");
    assert_eq!(field(&r1, "size"), direct1.size().to_string(), "{r1}");
    assert_eq!(field(&r2, "status"), "optimal", "{r2}");
    assert_eq!(field(&r2, "size"), direct2.size().to_string(), "{r2}");
    // The reported vertex sets are valid k-defective cliques of the inputs.
    let verts1: Vec<u32> = field(&r1, "vertices")
        .split(',')
        .map(|v| v.parse().unwrap())
        .collect();
    assert!(g1.is_k_defective_clique(&verts1, 2), "{r1}");
    let verts2: Vec<u32> = field(&r2, "vertices")
        .split(',')
        .map(|v| v.parse().unwrap())
        .collect();
    assert!(g2.is_k_defective_clique(&verts2, 1), "{r2}");

    // ---- CANCEL a long-running job -------------------------------------
    let resp = control.send(&format!("LOAD {} AS hard", ph.display()));
    assert_eq!(field(&resp, "loaded"), "hard", "{resp}");
    let canceller = std::thread::scope(|scope| {
        let addr_solver = addr.clone();
        let solver_thread =
            scope.spawn(move || Client::connect(&addr_solver).send("SOLVE hard k=12"));
        // Poll JOBS until the hard solve is running, then cancel it.
        let cancelled_id = loop {
            let jobs = control.send("JOBS");
            let entries = field(&jobs, "jobs");
            if let Some(entry) = entries
                .split(';')
                .find(|e| e.contains("solve(hard") && e.contains(":running:"))
            {
                break entry.split(':').next().unwrap().to_string();
            }
            std::thread::yield_now();
        };
        let resp = control.send(&format!("CANCEL {cancelled_id}"));
        assert_eq!(field(&resp, "cancelled"), cancelled_id, "{resp}");
        let solve_resp = solver_thread.join().unwrap();
        assert_eq!(field(&solve_resp, "status"), "cancelled", "{solve_resp}");
        cancelled_id
    });
    let jobs = control.send("JOBS");
    assert!(
        jobs.contains(&format!("{canceller}:cancelled:")),
        "JOBS must show the cancelled job: {jobs}"
    );

    // ---- warm path: repeat solve skips re-parsing and re-searching -----
    let resp = control.send("SOLVE g1 k=2");
    assert_eq!(field(&resp, "cached"), "true", "{resp}");
    assert_eq!(field(&resp, "size"), direct1.size().to_string(), "{resp}");
    let stats = control.send("STATS g1");
    assert_eq!(
        field(&stats, "solves"),
        "1",
        "one real search only: {stats}"
    );
    assert_eq!(field(&stats, "result_hits"), "1", "{stats}");
    let global = control.send("STATS");
    assert_eq!(
        field(&global, "parses"),
        "3",
        "three LOADs, zero re-parses: {global}"
    );

    // ---- warm CTCP: a different preset (dodging the result memo) resumes
    // the resident reducer and is seeded with the recorded witness, so the
    // re-solve has nothing left to remove and builds one universe ----------
    let resp = control.send("SOLVE g1 k=2 preset=kdbb");
    assert_eq!(field(&resp, "cached"), "false", "{resp}");
    assert_eq!(field(&resp, "size"), direct1.size().to_string(), "{resp}");
    assert_eq!(
        field(&resp, "ctcp_removed_v"),
        "0",
        "resumed reducer is already at the fixpoint: {resp}"
    );
    assert_eq!(field(&resp, "universe_rebuilds"), "1", "{resp}");
    let stats = control.send("STATS g1");
    assert_eq!(field(&stats, "ctcp_builds"), "1", "{stats}");
    assert_eq!(field(&stats, "ctcp_resumes"), "1", "{stats}");

    // ---- SHUTDOWN ------------------------------------------------------
    let resp = control.send("SHUTDOWN");
    assert_eq!(resp, "OK shutdown=ok");
    handle.join().expect("clean server exit");
}
