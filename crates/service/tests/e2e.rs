//! End-to-end smoke test for the solver daemon: one `Server` on an
//! ephemeral loopback port drives a full multi-request session —
//! LOAD → two *concurrent* SOLVEs on different cached graphs → a CANCEL of
//! a long-running job → warm-path re-solve → SHUTDOWN — and every solve
//! answer is checked against the direct [`kdc::Solver`] API on the same
//! inputs.

use kdc::{Solver, SolverConfig};
use kdc_graph::{gen, named, Graph};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

/// A persistent client connection: send one line, read one line.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    fn send(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read");
        response.trim_end().to_string()
    }
}

/// Extracts `key=` from an `OK key=value ...` response line.
fn field<'a>(response: &'a str, key: &str) -> &'a str {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no field {key}= in {response:?}"))
}

fn write_graph(name: &str, g: &Graph) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdc_service_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    kdc_graph::io::write_dimacs(g, &path).unwrap();
    path
}

#[test]
fn full_session_on_ephemeral_port() {
    // Two easy-but-distinct graphs for the concurrent solves, one dense
    // graph hard enough that its solve must be cancelled, not awaited.
    let g1 = named::figure2();
    let mut rng = gen::seeded_rng(321);
    let (g2, _) = gen::planted_defective_clique(120, 12, 1, 0.05, &mut rng);
    let hard = gen::gnp(220, 0.5, &mut rng);
    let p1 = write_graph("g1.clq", &g1);
    let p2 = write_graph("g2.clq", &g2);
    let ph = write_graph("hard.clq", &hard);

    // Ground truth from the direct solver API on the same inputs.
    let direct1 = Solver::new(&g1, 2, SolverConfig::kdc()).solve();
    let direct2 = Solver::new(&g2, 1, SolverConfig::kdc()).solve();

    let handle = kdc_service::Server::bind("127.0.0.1:0", 2)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    // ---- LOAD both graphs over a control connection --------------------
    let mut control = Client::connect(&addr);
    let resp = control.send(&format!("LOAD {} AS g1", p1.display()));
    assert_eq!(field(&resp, "loaded"), "g1", "{resp}");
    assert_eq!(field(&resp, "n"), "12", "{resp}");
    let resp = control.send(&format!("LOAD {} AS g2", p2.display()));
    assert_eq!(field(&resp, "loaded"), "g2", "{resp}");

    // ---- two concurrent SOLVEs on different cached graphs --------------
    let (r1, r2) = std::thread::scope(|scope| {
        let addr1 = addr.clone();
        let addr2 = addr.clone();
        let t1 = scope.spawn(move || Client::connect(&addr1).send("SOLVE g1 k=2"));
        let t2 = scope.spawn(move || Client::connect(&addr2).send("SOLVE g2 k=1 threads=2"));
        (t1.join().unwrap(), t2.join().unwrap())
    });
    assert_eq!(field(&r1, "status"), "optimal", "{r1}");
    assert_eq!(field(&r1, "size"), direct1.size().to_string(), "{r1}");
    assert_eq!(field(&r2, "status"), "optimal", "{r2}");
    assert_eq!(field(&r2, "size"), direct2.size().to_string(), "{r2}");
    // The reported vertex sets are valid k-defective cliques of the inputs.
    let verts1: Vec<u32> = field(&r1, "vertices")
        .split(',')
        .map(|v| v.parse().unwrap())
        .collect();
    assert!(g1.is_k_defective_clique(&verts1, 2), "{r1}");
    let verts2: Vec<u32> = field(&r2, "vertices")
        .split(',')
        .map(|v| v.parse().unwrap())
        .collect();
    assert!(g2.is_k_defective_clique(&verts2, 1), "{r2}");

    // ---- CANCEL a long-running job -------------------------------------
    let resp = control.send(&format!("LOAD {} AS hard", ph.display()));
    assert_eq!(field(&resp, "loaded"), "hard", "{resp}");
    let canceller = std::thread::scope(|scope| {
        let addr_solver = addr.clone();
        let solver_thread =
            scope.spawn(move || Client::connect(&addr_solver).send("SOLVE hard k=12"));
        // Poll JOBS until the hard solve is running, then cancel it.
        let cancelled_id = loop {
            let jobs = control.send("JOBS");
            let entries = field(&jobs, "jobs");
            if let Some(entry) = entries
                .split(';')
                .find(|e| e.contains("solve(hard") && e.contains(":running:"))
            {
                break entry.split(':').next().unwrap().to_string();
            }
            std::thread::yield_now();
        };
        let resp = control.send(&format!("CANCEL {cancelled_id}"));
        assert_eq!(field(&resp, "cancelled"), cancelled_id, "{resp}");
        let solve_resp = solver_thread.join().unwrap();
        assert_eq!(field(&solve_resp, "status"), "cancelled", "{solve_resp}");
        cancelled_id
    });
    let jobs = control.send("JOBS");
    assert!(
        jobs.contains(&format!("{canceller}:cancelled:")),
        "JOBS must show the cancelled job: {jobs}"
    );
    // Every JOBS row reports its queue-wait and execution time; the
    // cancelled job ran long enough that its running_ns cannot be zero.
    for entry in field(&jobs, "jobs").split(';') {
        assert!(
            entry.contains(":queued_ns=") && entry.contains(":running_ns="),
            "JOBS row missing timing fields: {entry}"
        );
    }
    let cancelled_row = field(&jobs, "jobs")
        .split(';')
        .find(|e| e.starts_with(&format!("{canceller}:")))
        .expect("cancelled job listed");
    let running_ns: u64 = cancelled_row
        .split(":running_ns=")
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(running_ns > 0, "cancelled job did run: {cancelled_row}");

    // ---- warm path: repeat solve skips re-parsing and re-searching -----
    let resp = control.send("SOLVE g1 k=2");
    assert_eq!(field(&resp, "cached"), "true", "{resp}");
    assert_eq!(field(&resp, "size"), direct1.size().to_string(), "{resp}");
    let stats = control.send("STATS g1");
    assert_eq!(
        field(&stats, "solves"),
        "1",
        "one real search only: {stats}"
    );
    assert_eq!(field(&stats, "result_hits"), "1", "{stats}");
    let global = control.send("STATS");
    assert_eq!(
        field(&global, "parses"),
        "3",
        "three LOADs, zero re-parses: {global}"
    );

    // ---- warm CTCP: a different preset (dodging the result memo) resumes
    // the resident reducer and is seeded with the recorded witness, so the
    // re-solve has nothing left to remove and builds one universe ----------
    let resp = control.send("SOLVE g1 k=2 preset=kdbb");
    assert_eq!(field(&resp, "cached"), "false", "{resp}");
    assert_eq!(field(&resp, "size"), direct1.size().to_string(), "{resp}");
    assert_eq!(
        field(&resp, "ctcp_removed_v"),
        "0",
        "resumed reducer is already at the fixpoint: {resp}"
    );
    assert_eq!(field(&resp, "universe_rebuilds"), "1", "{resp}");
    let stats = control.send("STATS g1");
    assert_eq!(field(&stats, "ctcp_builds"), "1", "{stats}");
    assert_eq!(field(&stats, "ctcp_resumes"), "1", "{stats}");

    // ---- COUNT through the same session --------------------------------
    let direct_counts = kdc::counting::count_k_defective_cliques(&g1, 1, 5);
    let resp = control.send("COUNT g1 k=1 min=5");
    assert_eq!(
        field(&resp, "total"),
        direct_counts.total_at_least(5).to_string(),
        "{resp}"
    );
    assert_eq!(
        field(&resp, "max_size"),
        direct_counts.max_size().to_string(),
        "{resp}"
    );

    // ---- the reducer cache is LRU-bounded and reports evictions --------
    let stats = control.send("STATS g1");
    assert_eq!(field(&stats, "ctcp_evictions"), "0", "{stats}");

    // ---- SHUTDOWN ------------------------------------------------------
    let resp = control.send("SHUTDOWN");
    assert_eq!(resp, "OK shutdown=ok mode=abort");
    handle.join().expect("clean server exit");
}

#[test]
fn verbose_solve_streams_events_end_to_end() {
    // `SOLVE verbose=1` must deliver EVENT lines (at least one incumbent)
    // over the wire *before* the final OK line — the daemon leg of the
    // Observer channel.
    let g = named::figure2();
    let path = write_graph("fig2_verbose.clq", &g);
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr);
    let resp = client.send(&format!("LOAD {} AS fig2", path.display()));
    assert_eq!(field(&resp, "loaded"), "fig2", "{resp}");

    // Raw line-by-line read: EVENT* then the final OK.
    client
        .writer
        .write_all(b"SOLVE fig2 k=2 verbose=1\n")
        .unwrap();
    client.writer.flush().unwrap();
    let mut events: Vec<String> = Vec::new();
    let final_line = loop {
        let mut line = String::new();
        client.reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        if line.starts_with("EVENT ") {
            events.push(line);
        } else {
            break line;
        }
    };
    assert!(
        events
            .iter()
            .any(|e| e.contains("type=incumbent") && e.contains("size=")),
        "an incumbent event must be streamed: {events:?}"
    );
    assert!(
        events.last().unwrap().contains("type=done status=optimal"),
        "the stream ends with a done event: {events:?}"
    );
    assert_eq!(field(&final_line, "status"), "optimal", "{final_line}");
    assert_eq!(field(&final_line, "size"), "6", "{final_line}");

    // The one-shot request helper folds the stream into one response whose
    // last line is the verdict (what `kdc client` prints). A warm verbose
    // re-solve under another preset still streams its incumbent.
    let resp = kdc_service::request(&addr, "SOLVE fig2 k=2 preset=kdbb verbose=1").unwrap();
    let lines: Vec<&str> = resp.lines().collect();
    assert!(
        lines.iter().any(|l| l.starts_with("EVENT type=incumbent")),
        "{resp}"
    );
    assert!(lines.last().unwrap().starts_with("OK "), "{resp}");
    assert_eq!(
        field(lines.last().unwrap(), "ctcp_resumed"),
        "true",
        "{resp}"
    );

    // verbose=0 (and omitted) keeps the single-line response contract.
    let resp = kdc_service::request(&addr, "SOLVE fig2 k=2 verbose=0").unwrap();
    assert_eq!(resp.lines().count(), 1, "{resp}");

    client.send("SHUTDOWN");
    handle.join().expect("clean server exit");
}

#[test]
fn metrics_trace_and_slow_query_log_end_to_end() {
    let g = named::figure2();
    let path = write_graph("fig2_metrics.clq", &g);
    // Threshold zero: every solve is a "slow query", so the counter and
    // the stderr log path are exercised deterministically.
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .with_slow_threshold(std::time::Duration::ZERO)
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr);
    let resp = client.send(&format!("LOAD {} AS fig2", path.display()));
    assert_eq!(field(&resp, "loaded"), "fig2", "{resp}");
    let resp = client.send("SOLVE fig2 k=2");
    assert_eq!(field(&resp, "status"), "optimal", "{resp}");
    let job_id = field(&resp, "job").to_string();

    // ---- METRICS: Prometheus exposition streamed as METRIC lines -------
    client.writer.write_all(b"METRICS\n").unwrap();
    client.writer.flush().unwrap();
    let mut metric_lines: Vec<String> = Vec::new();
    let final_line = loop {
        let mut line = String::new();
        client.reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_string();
        if let Some(sample) = line.strip_prefix("METRIC ") {
            metric_lines.push(sample.to_string());
        } else {
            break line;
        }
    };
    assert!(final_line.starts_with("OK "), "{final_line}");
    let series: usize = field(&final_line, "series").parse().unwrap();
    assert!(series > 0, "registry must not be empty: {final_line}");
    // Parse every exposition line: `# TYPE <name> <kind>` comments or
    // `name{labels} value` samples with numeric values.
    let mut samples = 0usize;
    for line in &metric_lines {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("type line has a name");
            let kind = parts.next().expect("type line has a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown kind in {line:?}"
            );
            assert!(name.starts_with("kdc_"), "bad series name in {line:?}");
        } else {
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("unparseable sample value in {line:?}"));
            samples += 1;
        }
    }
    assert_eq!(samples, series, "series count matches sample lines");
    for required in [
        "kdc_service_jobs_total",
        "kdc_service_queue_depth",
        "kdc_service_queue_wait_ns",
        "kdc_service_job_duration_ns",
        "kdc_session_solves_total",
        "kdc_session_nodes_total",
        "kdc_core_bound_invocations_total",
    ] {
        assert!(
            metric_lines
                .iter()
                .any(|l| l.starts_with(required) || l.starts_with(&format!("# TYPE {required}"))),
            "required series {required} missing from METRICS output"
        );
    }
    // The zero threshold forced the solve into the slow-query log.
    let slow = metric_lines
        .iter()
        .find(|l| l.starts_with("kdc_service_slow_queries_total "))
        .expect("slow query counter exported");
    let slow_count: u64 = slow.rsplit_once(' ').unwrap().1.parse().unwrap();
    assert!(slow_count >= 1, "threshold 0 logs every solve: {slow}");

    // ---- TRACE: per-job chrome://tracing JSON --------------------------
    let resp = client.send(&format!("TRACE {job_id}"));
    assert!(resp.starts_with("OK "), "{resp}");
    assert_eq!(field(&resp, "job"), job_id, "{resp}");
    let spans: usize = field(&resp, "spans").parse().unwrap();
    assert!(spans > 0, "solve must record phase spans: {resp}");
    let json = field(&resp, "trace");
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    assert!(json.contains("\"name\":\"peel\""), "{json}");
    // Jobs without a tracer (counts) and unknown ids are clean errors.
    let resp = client.send("COUNT fig2 k=1 min=5");
    assert!(resp.starts_with("OK "), "{resp}");
    let count_job = field(&resp, "job").to_string();
    assert!(client
        .send(&format!("TRACE {count_job}"))
        .starts_with("ERR "));
    assert!(client.send("TRACE 9999").starts_with("ERR "));

    client.send("SHUTDOWN");
    handle.join().expect("clean server exit");
}

/// `SHUTDOWN mode=drain` lets in-flight *and* queued jobs publish their
/// real outcomes (verbose streams included) before the daemon exits.
#[test]
fn drain_shutdown_completes_queued_jobs() {
    let mut rng = gen::seeded_rng(77);
    let hard = gen::gnp(220, 0.5, &mut rng);
    let ph = write_graph("drain_hard.clq", &hard);
    // One worker: the second solve is necessarily still queued when the
    // drain request lands.
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut control = Client::connect(&addr);
    let resp = control.send(&format!("LOAD {} AS hard", ph.display()));
    assert_eq!(field(&resp, "loaded"), "hard", "{resp}");

    let (r1, r2) = std::thread::scope(|scope| {
        let a1 = addr.clone();
        let a2 = addr.clone();
        let t1 = scope.spawn(move || {
            kdc_service::request(&a1, "SOLVE hard k=12 nodes=50000 verbose=1").unwrap()
        });
        let t2 =
            scope.spawn(move || kdc_service::request(&a2, "SOLVE hard k=12 nodes=20000").unwrap());
        // Wait until one solve runs and the other queues, then drain.
        loop {
            let jobs = control.send("JOBS");
            let entries = field(&jobs, "jobs");
            let running = entries.matches(":running:").count();
            let queued = entries.matches(":queued:").count();
            if running == 1 && queued == 1 {
                break;
            }
            std::thread::yield_now();
        }
        let resp = control.send("SHUTDOWN mode=drain");
        assert_eq!(resp, "OK shutdown=ok mode=drain");
        (t1.join().unwrap(), t2.join().unwrap())
    });
    // Both jobs ran to their node budgets — nobody was cancelled or left
    // hanging — and the verbose stream still delivered its events.
    let verdict1 = r1.lines().last().unwrap();
    assert_eq!(field(verdict1, "status"), "node-limit", "{r1}");
    assert!(
        r1.lines().any(|l| l.starts_with("EVENT ")),
        "drain must let the event stream finish: {r1}"
    );
    assert_eq!(field(&r2, "status"), "node-limit", "{r2}");
    handle.join().expect("clean server exit");
}

/// Plain `SHUTDOWN` (mode=abort) cancels outstanding jobs cooperatively:
/// waiters get a typed best-effort answer, not a hang.
#[test]
fn abort_shutdown_cancels_running_job() {
    let mut rng = gen::seeded_rng(78);
    let hard = gen::gnp(220, 0.5, &mut rng);
    let ph = write_graph("abort_hard.clq", &hard);
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut control = Client::connect(&addr);
    let resp = control.send(&format!("LOAD {} AS hard", ph.display()));
    assert_eq!(field(&resp, "loaded"), "hard", "{resp}");

    let solve_resp = std::thread::scope(|scope| {
        let a = addr.clone();
        let t = scope.spawn(move || Client::connect(&a).send("SOLVE hard k=12"));
        loop {
            let jobs = control.send("JOBS");
            if field(&jobs, "jobs").contains(":running:") {
                break;
            }
            std::thread::yield_now();
        }
        let resp = control.send("SHUTDOWN");
        assert_eq!(resp, "OK shutdown=ok mode=abort");
        t.join().unwrap()
    });
    assert_eq!(field(&solve_resp, "status"), "cancelled", "{solve_resp}");
    handle.join().expect("clean server exit");
}

/// A bounded job queue refuses the overflow request with a typed busy line
/// carrying a retry hint — the client-visible half of admission control.
#[test]
fn bounded_queue_answers_typed_busy() {
    let mut rng = gen::seeded_rng(79);
    let hard = gen::gnp(220, 0.5, &mut rng);
    let ph = write_graph("busy_hard.clq", &hard);
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .with_limits(0, 1)
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut control = Client::connect(&addr);
    let resp = control.send(&format!("LOAD {} AS hard", ph.display()));
    assert_eq!(field(&resp, "loaded"), "hard", "{resp}");

    std::thread::scope(|scope| {
        let a1 = addr.clone();
        let a2 = addr.clone();
        let t1 = scope.spawn(move || Client::connect(&a1).send("SOLVE hard k=12"));
        // Occupy the single worker...
        loop {
            let jobs = control.send("JOBS");
            if field(&jobs, "jobs").contains(":running:") {
                break;
            }
            std::thread::yield_now();
        }
        // ...then fill the depth-1 queue...
        let t2 = scope.spawn(move || Client::connect(&a2).send("SOLVE hard k=12"));
        loop {
            let jobs = control.send("JOBS");
            if field(&jobs, "jobs").contains(":queued:") {
                break;
            }
            std::thread::yield_now();
        }
        // ...so the third solve is refused with the typed busy line.
        let busy = control.send("SOLVE hard k=12");
        assert!(busy.starts_with("ERR busy queue_depth=1"), "{busy}");
        assert!(busy.contains("retry_after_ms="), "{busy}");
        // Cheap commands are never load-shed by the queue bound.
        assert!(control.send("JOBS").starts_with("OK "), "cheap verbs pass");

        let resp = control.send("SHUTDOWN");
        assert_eq!(resp, "OK shutdown=ok mode=abort");
        // The running job is cancelled cooperatively (best-effort answer);
        // the queued one never ran and is refused with a typed error.
        assert_eq!(field(&t1.join().unwrap(), "status"), "cancelled");
        let r2 = t2.join().unwrap();
        assert!(
            r2.starts_with("ERR ") && r2.contains("shutting down"),
            "{r2}"
        );
    });
    handle.join().expect("clean server exit");
}

/// Beyond the connection cap, a fresh connection gets one typed busy line
/// and a hangup; once a slot frees, new connections are served again.
#[test]
fn connection_cap_answers_typed_busy() {
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .with_limits(1, 0)
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut holder = Client::connect(&addr);
    assert!(holder.send("JOBS").starts_with("OK "), "first conn serves");

    let mut refused = Client::connect(&addr);
    let mut line = String::new();
    refused.reader.read_line(&mut line).expect("busy line");
    let line = line.trim_end();
    assert!(line.starts_with("ERR busy active_conns=1"), "{line}");
    assert!(line.contains("retry_after_ms="), "{line}");
    let mut rest = String::new();
    refused.reader.read_line(&mut rest).expect("eof read");
    assert!(rest.is_empty(), "refused conn must be closed, got {rest:?}");

    // Free the slot; the guard decrement races with our reconnect, so poll.
    drop(holder);
    let mut served = loop {
        let mut c = Client::connect(&addr);
        let mut line = String::new();
        c.writer.write_all(b"JOBS\n").expect("write");
        c.reader.read_line(&mut line).expect("read");
        if line.starts_with("OK ") {
            break c;
        }
    };
    let resp = served.send("SHUTDOWN");
    assert_eq!(resp, "OK shutdown=ok mode=abort");
    handle.join().expect("clean server exit");
}

/// A request line past `MAX_LINE_BYTES` cannot be resynced mid-stream: the
/// daemon answers one typed error and hangs up instead of buffering
/// hostile bytes forever.
#[test]
fn oversized_request_line_gets_error_then_hangup() {
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr);
    let oversized = vec![b'A'; 66 * 1024];
    client.writer.write_all(&oversized).expect("write blob");
    client.writer.flush().expect("flush");
    let mut line = String::new();
    client.reader.read_line(&mut line).expect("error line");
    assert_eq!(line.trim_end(), "ERR request line too long", "{line}");
    // The hangup arrives as clean EOF or, because the daemon closes with
    // unread bytes still pending, as a connection reset — never as more
    // protocol lines.
    let mut rest = String::new();
    if let Ok(n) = client.reader.read_line(&mut rest) {
        assert_eq!(n, 0, "connection must be closed, got {rest:?}");
    }

    // The daemon itself is unharmed.
    let mut fresh = Client::connect(&addr);
    assert!(fresh.send("JOBS").starts_with("OK "));
    fresh.send("SHUTDOWN");
    handle.join().expect("clean server exit");
}

/// A half-open (stalled mid-line) connection is reaped by the idle timeout
/// instead of pinning a handler thread forever, and the reap is counted.
#[test]
fn idle_timeout_reaps_half_open_connection() {
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .with_idle_timeout(std::time::Duration::from_millis(150))
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut stalled = Client::connect(&addr);
    // A partial command with no newline: a well-behaved reader would wait
    // for the rest of the line forever.
    stalled.writer.write_all(b"SOLVE nope").expect("write");
    stalled.writer.flush().expect("flush");
    let start = std::time::Instant::now();
    let mut line = String::new();
    stalled.reader.read_line(&mut line).expect("goodbye line");
    assert_eq!(line.trim_end(), "ERR idle timeout, closing", "{line}");
    assert!(
        start.elapsed() >= std::time::Duration::from_millis(100),
        "the reap must come from the timeout, not an instant close"
    );
    let mut rest = String::new();
    stalled.reader.read_line(&mut rest).expect("eof read");
    assert!(rest.is_empty(), "connection must be closed, got {rest:?}");

    // The reap is observable: scrape the counter over a fresh connection.
    let resp = kdc_service::request(&addr, "METRICS").expect("metrics");
    let count = resp
        .lines()
        .find_map(|l| l.strip_prefix("METRIC kdc_service_conn_timeouts_total "))
        .expect("conn_timeouts series exported");
    assert!(
        count.trim().parse::<f64>().unwrap() >= 1.0,
        "timeout counted: {count}"
    );
    kdc_service::request(&addr, "SHUTDOWN").expect("shutdown");
    handle.join().expect("clean server exit");
}

/// Jobs submitted without their own `limit=`/`nodes=` budget are killed by
/// the watchdog and surfaced as `failed reason=watchdog` in `JOBS`.
#[test]
fn watchdog_fails_limitless_job() {
    let mut rng = gen::seeded_rng(80);
    let hard = gen::gnp(220, 0.5, &mut rng);
    let ph = write_graph("watchdog_hard.clq", &hard);
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .with_watchdog(std::time::Duration::from_millis(150))
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut control = Client::connect(&addr);
    let resp = control.send(&format!("LOAD {} AS hard", ph.display()));
    assert_eq!(field(&resp, "loaded"), "hard", "{resp}");

    // Limit-less solve on a graph that takes far longer than the deadline.
    let resp = control.send("SOLVE hard k=12");
    assert!(
        resp.starts_with("ERR "),
        "watchdog kill is an error: {resp}"
    );
    assert!(resp.contains("watchdog"), "{resp}");
    let jobs = control.send("JOBS");
    let row = field(&jobs, "jobs")
        .split(';')
        .find(|e| e.contains(":failed:"))
        .unwrap_or_else(|| panic!("no failed row in {jobs}"));
    assert!(row.contains(":reason=watchdog"), "{row}");

    // A budgeted job on the same daemon is left alone by the watchdog.
    let resp = control.send("SOLVE hard k=12 nodes=2000");
    assert_eq!(field(&resp, "status"), "node-limit", "{resp}");

    control.send("SHUTDOWN");
    handle.join().expect("clean server exit");
}

/// A job that panics mid-solve must come back as an `ERR` reply — not a
/// hung waiter, not a dead worker. Debug builds only: the fault-injection
/// preset does not exist in release builds.
#[cfg(debug_assertions)]
#[test]
fn panicking_job_leaves_daemon_serving() {
    let g = named::figure2();
    let p = write_graph("panic_fig2.clq", &g);
    // One worker on purpose: if the panic killed it, the follow-up solve
    // below would hang instead of answering.
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr);
    let resp = client.send(&format!("LOAD {} AS fig2", p.display()));
    assert_eq!(field(&resp, "loaded"), "fig2", "{resp}");

    let resp = client.send(&format!(
        "SOLVE fig2 k=2 preset={}",
        kdc_api::query::PANIC_PRESET
    ));
    assert!(
        resp.starts_with("ERR "),
        "panic must surface as ERR: {resp}"
    );
    assert!(resp.contains("panicked"), "{resp}");

    // Same connection still answers, and the answer is still right.
    let direct = Solver::new(&g, 2, SolverConfig::kdc()).solve();
    let resp = client.send("SOLVE fig2 k=2");
    assert_eq!(field(&resp, "status"), "optimal", "{resp}");
    assert_eq!(field(&resp, "size"), direct.size().to_string(), "{resp}");

    // Fresh connections are accepted too, and JOBS records the failure.
    let mut fresh = Client::connect(&addr);
    let jobs = fresh.send("JOBS");
    assert!(
        jobs.contains(":failed:"),
        "failed job visible in JOBS: {jobs}"
    );

    let resp = fresh.send("SHUTDOWN");
    assert_eq!(resp, "OK shutdown=ok mode=abort");
    handle.join().expect("clean server exit");
}
