//! Chaos soak for the hardened daemon lifecycle: one server with every
//! fault point armed at low probability is hammered by concurrent clients,
//! then must come back clean — no deadlocks, no leaked `JOBS` rows, typed
//! replies (or clean disconnects) throughout, and a post-chaos solve that
//! matches the direct [`kdc::Solver`] answer on the same input.
//!
//! The fault plan is process-global (`kdc_faults` is a set of static
//! atomics), so these tests live in their own integration binary and are
//! serialized through [`FAULT_SCOPE`]: nothing else in this process races
//! an armed plan.

use kdc::{Solver, SolverConfig};
use kdc_graph::gen;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes tests that arm the process-global fault plan.
static FAULT_SCOPE: Mutex<()> = Mutex::new(());

fn write_graph(name: &str, g: &kdc_graph::Graph) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdc_service_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    kdc_graph::io::write_dimacs(g, &path).unwrap();
    path
}

/// Extracts `key=` from an `OK key=value ...` response line.
fn field<'a>(response: &'a str, key: &str) -> &'a str {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no field {key}= in {response:?}"))
}

/// One chaos exchange: connect, send `line`, read every reply line until
/// the stream ends or a final (non-`EVENT`/`METRIC`) line arrives. Under an
/// armed fault plan every leg may fail; the caller only learns whether a
/// final line arrived and what it was.
fn chaos_exchange(addr: &str, line: &str) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    // A bounded patience so an injected delay never wedges the soak.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut writer = stream.try_clone().ok()?;
    let mut reader = BufReader::new(stream);
    writer.write_all(format!("{line}\n").as_bytes()).ok()?;
    writer.flush().ok()?;
    loop {
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(0) | Err(_) => return None, // torn reply / injected drop
            Ok(_) => {}
        }
        let reply = reply.trim_end();
        if !reply.starts_with("EVENT ") && !reply.starts_with("METRIC ") {
            return Some(reply.to_string());
        }
    }
}

/// The soak proper. Release builds run a longer storm (CI runs this test
/// with `--release`); debug keeps it short enough for `cargo test`.
#[test]
fn chaos_soak_daemon_survives_and_recovers() {
    let _scope = FAULT_SCOPE.lock().unwrap();
    kdc_faults::set_seed(0xC0FFEE);

    let mut rng = gen::seeded_rng(2023);
    let (g, _) = gen::planted_defective_clique(150, 14, 2, 0.08, &mut rng);
    let path = write_graph("soak.clq", &g);
    let direct = Solver::new(&g, 2, SolverConfig::kdc()).solve();

    let handle = kdc_service::Server::bind("127.0.0.1:0", 3)
        .expect("bind ephemeral port")
        .with_limits(0, 32)
        .with_idle_timeout(Duration::from_secs(20))
        .with_watchdog(Duration::from_secs(10))
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    // Load before arming: the soak needs the graph resident, and the
    // cache_insert point would make this LOAD itself flaky.
    let loaded = chaos_exchange(&addr, &format!("LOAD {} AS g", path.display()))
        .expect("pre-chaos LOAD must answer");
    assert_eq!(field(&loaded, "loaded"), "g", "{loaded}");

    // Every point armed; connection-level points low enough that most
    // exchanges complete, solver-level ones high enough to actually fire.
    let armed = kdc_faults::install_plan(
        "accept:error:p=0.05,conn_read:error:p=0.05,conn_write:drop:p=0.05,\
         job_start:error:p=0.10,solve_node:error:p=0.05,cache_insert:error:p=0.50,\
         conn_read:delay=1:p=0.05",
    );
    // Duplicate points overwrite, never stack: the plan still arms 7 rules
    // but conn_read ends up delay-armed.
    assert_eq!(armed.expect("valid plan"), 7);

    let iterations = if cfg!(debug_assertions) { 40 } else { 150 };
    let commands = [
        "SOLVE g k=2 nodes=5000",
        "SOLVE g k=2 preset=kdbb nodes=5000 verbose=1",
        "SOLVE g k=1 nodes=2000",
        "COUNT g k=1 min=12",
        "JOBS",
        "STATS",
        &format!("LOAD {} AS spare", path.display()),
    ];
    std::thread::scope(|scope| {
        for client in 0..12usize {
            let addr = addr.clone();
            let commands = &commands;
            scope.spawn(move || {
                for i in 0..iterations {
                    let line = commands[(client + i) % commands.len()];
                    if let Some(reply) = chaos_exchange(&addr, line) {
                        // Completed exchanges are always typed, even when a
                        // fault fired inside the request.
                        assert!(
                            reply.starts_with("OK ") || reply.starts_with("ERR "),
                            "untyped reply under chaos: {reply:?}"
                        );
                    }
                }
            });
        }
    });
    assert!(
        kdc_faults::injected_total() > 0,
        "the storm must have injected something"
    );
    kdc_faults::disarm_all();

    // Recovery: every job drains (no stuck queued/running rows => no
    // waiter leaked, no worker wedged).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let jobs = chaos_exchange(&addr, "JOBS").expect("post-chaos JOBS must answer");
        let rows = field(&jobs, "jobs");
        if !rows.contains(":queued:") && !rows.contains(":running:") {
            break;
        }
        assert!(Instant::now() < deadline, "jobs leaked after chaos: {jobs}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // The storm is visible on the scrape surface.
    let metrics = kdc_service::request(&addr, "METRICS").expect("metrics scrape");
    let injected: f64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("METRIC kdc_service_faults_injected_total "))
        .expect("faults counter exported")
        .trim()
        .parse()
        .unwrap();
    assert!(injected >= 1.0, "{metrics}");

    // Post-chaos correctness: a fresh solve still matches the direct
    // solver bit for bit (size and a valid witness).
    let resp = chaos_exchange(&addr, "SOLVE g k=2").expect("post-chaos solve must answer");
    assert_eq!(field(&resp, "status"), "optimal", "{resp}");
    assert_eq!(field(&resp, "size"), direct.size().to_string(), "{resp}");
    let verts: Vec<u32> = field(&resp, "vertices")
        .split(',')
        .map(|v| v.parse().unwrap())
        .collect();
    assert!(g.is_k_defective_clique(&verts, 2), "{resp}");

    // And the daemon still shuts down gracefully.
    let resp = chaos_exchange(&addr, "SHUTDOWN mode=drain").expect("shutdown reply");
    assert_eq!(resp, "OK shutdown=ok mode=drain");
    handle.join().expect("clean server exit");
}

/// `request_with_retry` retries a torn reply — the daemon dropping the
/// connection mid-write — but only for the idempotent read verbs
/// (`SOLVE`/`STATS`/`METRICS`); any other verb surfaces the tear to the
/// caller because the first attempt may already have had side effects.
#[test]
fn torn_replies_retry_only_for_idempotent_verbs() {
    let _scope = FAULT_SCOPE.lock().unwrap();
    kdc_faults::disarm_all();
    let handle = kdc_service::Server::bind("127.0.0.1:0", 2)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    // Deterministic tear: exactly the next reply write is dropped, so the
    // first attempt comes back torn and the single retry lands clean.
    // (Arming resets the point's fired counter, so sample after arming.)
    kdc_faults::install_plan("conn_write:drop:n=1").expect("valid plan");
    let before = kdc_faults::injected_total();
    let reply = kdc_service::request_with_retry(&addr, "STATS", 2, Duration::from_millis(1))
        .expect("idempotent verb must retry through the torn reply");
    assert!(
        reply.starts_with("OK "),
        "retry must land a full reply: {reply:?}"
    );
    assert_eq!(
        kdc_faults::injected_total() - before,
        1,
        "exactly one torn write injected, then the retry succeeded"
    );

    // The same tear on a non-idempotent verb is surfaced as-is — one
    // injection, no second attempt.
    kdc_faults::install_plan("conn_write:drop:n=1").expect("valid plan");
    let before = kdc_faults::injected_total();
    let reply = kdc_service::request_with_retry(&addr, "JOBS", 2, Duration::from_millis(1))
        .expect("a torn reply is not a transport error");
    assert!(
        !reply
            .lines()
            .last()
            .is_some_and(|l| l.starts_with("OK") || l.starts_with("ERR")),
        "non-idempotent verb must surface the torn reply: {reply:?}"
    );
    assert_eq!(
        kdc_faults::injected_total() - before,
        1,
        "no retry means no second injection"
    );
    kdc_faults::disarm_all();

    let resp = chaos_exchange(&addr, "SHUTDOWN mode=drain").expect("shutdown reply");
    assert_eq!(resp, "OK shutdown=ok mode=drain");
    handle.join().expect("clean server exit");
}

/// The `FAULTS` verb end to end: arm over the wire, watch a fault fire,
/// disarm. Debug builds only — release daemons refuse the verb.
#[test]
fn faults_verb_arms_and_disarms_over_the_wire() {
    let _scope = FAULT_SCOPE.lock().unwrap();
    kdc_faults::disarm_all();
    let handle = kdc_service::Server::bind("127.0.0.1:0", 1)
        .expect("bind ephemeral port")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr().to_string();

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut send = move |line: &str| -> String {
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    };

    if cfg!(debug_assertions) {
        assert_eq!(send("FAULTS"), "OK faults=off");
        // Deterministic trigger: exactly the next accept faults, i.e. the
        // next fresh connection — this control connection is unaffected.
        let resp = send("FAULTS accept:error:n=1");
        assert_eq!(resp, "OK faults=armed rules=1");
        let faulted = chaos_exchange(&addr, "JOBS").expect("one typed fault line");
        assert_eq!(faulted, "ERR fault injected at accept");
        let status = send("FAULTS");
        assert!(status.contains("accept=error"), "{status}");
        assert!(status.contains("fired=1"), "{status}");
        assert_eq!(send("FAULTS off"), "OK faults=off");
        let ok = chaos_exchange(&addr, "JOBS").expect("clean after disarm");
        assert!(ok.starts_with("OK "), "{ok}");
    } else {
        let resp = send("FAULTS accept:error:n=1");
        assert!(
            resp.starts_with("ERR ") && resp.contains("debug build"),
            "{resp}"
        );
        assert!(!kdc_faults::enabled(), "release daemon must stay disarmed");
    }

    let resp = send("SHUTDOWN");
    assert_eq!(resp, "OK shutdown=ok mode=abort");
    handle.join().expect("clean server exit");
}
