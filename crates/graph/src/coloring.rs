//! Greedy graph colouring.
//!
//! A proper colouring partitions vertices into independent sets (all vertices
//! of one colour are pairwise non-adjacent), which is the basis of the
//! colouring upper bounds UB1 and Eq. (2). Following §3.2.3 we colour
//! vertices in *reverse degeneracy order*, assigning each vertex the smallest
//! colour absent from its already-coloured neighbours; this uses at most
//! `δ(G) + 1` colours.

use crate::degeneracy;
use crate::graph::{Graph, VertexId};

/// A proper colouring: `color[v] ∈ [0, num_colors)`.
#[derive(Clone, Debug)]
pub struct Coloring {
    /// Colour of each vertex.
    pub color: Vec<u32>,
    /// Number of distinct colours used.
    pub num_colors: usize,
}

impl Coloring {
    /// Groups vertices by colour: `classes()[c]` is the vertex list of colour
    /// `c` (an independent set).
    pub fn classes(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.num_colors];
        for (v, &c) in self.color.iter().enumerate() {
            out[c as usize].push(v as VertexId);
        }
        out
    }

    /// Verifies properness against `g`.
    pub fn is_proper(&self, g: &Graph) -> bool {
        g.edges()
            .all(|(u, v)| self.color[u as usize] != self.color[v as usize])
    }
}

/// Greedy colouring in the given vertex order (first-fit).
pub fn greedy_in_order(g: &Graph, order: &[VertexId]) -> Coloring {
    let n = g.n();
    debug_assert_eq!(order.len(), n);
    let mut color = vec![u32::MAX; n];
    let mut used = Vec::new(); // scratch: colours taken by neighbours
    let mut num_colors = 0usize;
    for &v in order {
        used.clear();
        used.resize(num_colors + 1, false);
        for &w in g.neighbors(v) {
            let c = color[w as usize];
            if c != u32::MAX && (c as usize) < used.len() {
                used[c as usize] = true;
            }
        }
        let c = used.iter().position(|&t| !t).expect("one spare colour") as u32;
        color[v as usize] = c;
        num_colors = num_colors.max(c as usize + 1);
    }
    Coloring { color, num_colors }
}

/// Greedy colouring in reverse degeneracy order (the paper's choice for UB1;
/// guarantees at most `δ(G) + 1` colours).
pub fn greedy_degeneracy(g: &Graph) -> Coloring {
    let mut order = degeneracy::peel(g).order;
    order.reverse();
    greedy_in_order(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn clique_needs_n_colors() {
        let k6 = gen::complete(6);
        let c = greedy_degeneracy(&k6);
        assert_eq!(c.num_colors, 6);
        assert!(c.is_proper(&k6));
    }

    #[test]
    fn bipartite_two_colors() {
        // C6 (even cycle) is 2-colourable; greedy in degeneracy order finds 2.
        let c6 = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let c = greedy_degeneracy(&c6);
        assert!(c.is_proper(&c6));
        assert_eq!(c.num_colors, 2);
    }

    #[test]
    fn empty_graph_one_color() {
        let g = Graph::empty(4);
        let c = greedy_degeneracy(&g);
        assert_eq!(c.num_colors, 1);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn classes_are_independent_sets() {
        let mut rng = SmallRng::seed_from_u64(9);
        let g = gen::gnp(50, 0.3, &mut rng);
        let c = greedy_degeneracy(&g);
        assert!(c.is_proper(&g));
        for class in c.classes() {
            assert_eq!(g.edges_within(&class), 0);
        }
        // Degeneracy bound on the number of colours.
        let d = crate::degeneracy::peel(&g).degeneracy;
        assert!(c.num_colors <= d + 1);
    }

    #[test]
    fn multipartite_colors_equal_parts() {
        let g = gen::complete_multipartite(&[3, 3, 3]);
        let c = greedy_degeneracy(&g);
        assert!(c.is_proper(&g));
        assert_eq!(
            c.num_colors, 3,
            "complete 3-partite needs exactly 3 colours"
        );
    }
}
