//! k-truss decomposition (Definition 2.5).
//!
//! The k-truss is the maximal *edge-induced* subgraph in which every edge
//! participates in at least `k − 2` triangles. It is computed by iterative
//! edge peeling over triangle supports, in O(δ(G)·m) time, and underlies the
//! paper's reduction rule RR6 (the (lb−k+1)-truss of the input graph).

use crate::graph::{Graph, VertexId};
use crate::scratch::ScratchMap;

/// An indexed edge list: every undirected edge `(u, v)` with `u < v` gets a
/// dense id, and adjacency is augmented with edge ids.
#[derive(Clone, Debug)]
pub struct EdgeIndex {
    /// `edges[e] = (u, v)` with `u < v`.
    pub edges: Vec<(VertexId, VertexId)>,
    /// Per-vertex list of `(neighbor, edge_id)`, sorted by neighbour.
    pub inc: Vec<Vec<(VertexId, u32)>>,
}

impl EdgeIndex {
    /// Builds the index from a graph.
    pub fn new(g: &Graph) -> Self {
        let mut edges = Vec::with_capacity(g.m());
        let mut inc: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); g.n()];
        for (u, v) in g.edges() {
            let id = edges.len() as u32;
            edges.push((u, v));
            inc[u as usize].push((v, id));
            inc[v as usize].push((u, id));
        }
        // `Graph::edges` emits per-u sorted targets, so `inc[u]` entries with
        // v > u are sorted; entries with v < u were appended in increasing u
        // order as well. A final sort keeps the invariant simple.
        for list in &mut inc {
            list.sort_unstable_by_key(|&(v, _)| v);
        }
        EdgeIndex { edges, inc }
    }
}

/// Triangle support of every edge: `support[e]` = number of triangles through
/// edge `e`.
pub fn edge_supports(g: &Graph) -> (EdgeIndex, Vec<u32>) {
    let idx = EdgeIndex::new(g);
    let mut support = vec![0u32; idx.edges.len()];
    let mut mark = ScratchMap::new(g.n());
    for &(u, v) in &idx.edges {
        // Count common neighbours of u and v by marking N(u).
        let (u, v) = if g.degree(u) <= g.degree(v) {
            (v, u)
        } else {
            (u, v)
        };
        mark.reset();
        for &w in g.neighbors(u) {
            mark.set(w as usize, 1);
        }
        let e = edge_id(&idx, u, v).expect("edge present");
        let mut cnt = 0u32;
        for &w in g.neighbors(v) {
            if mark.get_or(w as usize, 0) == 1 {
                cnt += 1;
            }
        }
        support[e as usize] = cnt;
    }
    (idx, support)
}

/// Looks up the edge id of `(u, v)` in the index, if the edge exists.
/// Probes the *smaller* of the two incidence lists (the id is recorded in
/// both), so a lookup against a hub vertex costs `O(log d_min)`, not
/// `O(log d_max)` — the same smaller-side rule as [`Graph::has_edge`].
pub fn edge_id(idx: &EdgeIndex, u: VertexId, v: VertexId) -> Option<u32> {
    let (a, b) = if idx.inc[u as usize].len() <= idx.inc[v as usize].len() {
        (u, v)
    } else {
        (v, u)
    };
    let list = &idx.inc[a as usize];
    list.binary_search_by_key(&b, |&(w, _)| w)
        .ok()
        .map(|i| list[i].1)
}

/// Computes the `k`-truss of `g`: the maximal subgraph in which every edge is
/// contained in at least `k − 2` triangles. Vertices are preserved; only
/// edges are dropped. For `k ≤ 2` this is `g` itself.
pub fn k_truss(g: &Graph, k: usize) -> Graph {
    let threshold = k.saturating_sub(2) as u32;
    truss_filter(g, threshold)
}

/// Removes (iteratively) every edge whose number of common neighbours is
/// `< threshold`; the result is the `(threshold + 2)`-truss. This is the
/// primitive behind reduction rule RR6, where `threshold = lb − k − 1`.
pub fn truss_filter(g: &Graph, threshold: u32) -> Graph {
    if threshold == 0 {
        return g.clone();
    }
    let (idx, mut support) = edge_supports(g);
    let ne = idx.edges.len();
    let mut alive = vec![true; ne];
    let mut queue: Vec<u32> = (0..ne as u32)
        .filter(|&e| support[e as usize] < threshold)
        .collect();
    let mut mark = ScratchMap::new(g.n());

    while let Some(e) = queue.pop() {
        if !alive[e as usize] {
            continue;
        }
        alive[e as usize] = false;
        let (u, v) = idx.edges[e as usize];
        // For each live common neighbour w, the edges (u,w) and (v,w) each
        // lose one triangle.
        mark.reset();
        for &(w, eu) in &idx.inc[u as usize] {
            if alive[eu as usize] {
                mark.set(w as usize, eu as usize + 1);
            }
        }
        for &(w, ev) in &idx.inc[v as usize] {
            if !alive[ev as usize] {
                continue;
            }
            let stored = mark.get_or(w as usize, 0);
            if stored == 0 {
                continue;
            }
            let eu = (stored - 1) as u32;
            for edge in [eu, ev] {
                let s = &mut support[edge as usize];
                *s = s.saturating_sub(1);
                if *s < threshold && alive[edge as usize] {
                    queue.push(edge);
                }
            }
        }
    }

    g.edge_subgraph(|u, v| {
        edge_id(&idx, u, v)
            .map(|e| alive[e as usize])
            .unwrap_or(false)
    })
}

/// The trussness of each edge: the largest `k` such that the edge survives in
/// the `k`-truss. Returned alongside the edge index. Edges in no triangle
/// have trussness 2.
pub fn trussness(g: &Graph) -> (EdgeIndex, Vec<u32>) {
    // Simple repeated-peeling implementation (O(δ·m) per level); adequate for
    // test-scale graphs and for the named examples.
    let (idx, base_support) = edge_supports(g);
    let max_k = base_support.iter().copied().max().unwrap_or(0) + 2;
    let ne = idx.edges.len();
    let mut truss = vec![2u32; ne];
    for k in 3..=max_k {
        let sub = k_truss(g, k as usize);
        if sub.m() == 0 {
            break;
        }
        for (e, &(u, v)) in idx.edges.iter().enumerate() {
            if sub.has_edge(u, v) {
                truss[e] = k;
            }
        }
    }
    (idx, truss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn edge_id_is_symmetric_and_hub_safe() {
        // A star K1,6 with one extra rim edge: every lookup that involves
        // the hub must resolve identically from either endpoint (the lookup
        // probes the smaller incidence list).
        let g = Graph::from_edges(7, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (5, 6)]);
        let idx = EdgeIndex::new(&g);
        for (e, &(u, v)) in idx.edges.iter().enumerate() {
            assert_eq!(edge_id(&idx, u, v), Some(e as u32));
            assert_eq!(edge_id(&idx, v, u), Some(e as u32), "symmetric lookup");
        }
        assert_eq!(edge_id(&idx, 1, 2), None);
        assert_eq!(edge_id(&idx, 2, 1), None);
    }

    #[test]
    fn supports_on_k4() {
        let k4 = gen::complete(4);
        let (_, s) = edge_supports(&k4);
        assert_eq!(s, vec![2; 6], "every K4 edge lies in 2 triangles");
    }

    #[test]
    fn truss_of_clique() {
        let k5 = gen::complete(5);
        // Every edge of K5 is in 3 triangles → K5 is a 5-truss but not a 6-truss.
        assert_eq!(k_truss(&k5, 5).m(), 10);
        assert_eq!(k_truss(&k5, 6).m(), 0);
    }

    #[test]
    fn truss_below_three_is_identity() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(k_truss(&g, 2), g);
        assert_eq!(k_truss(&g, 0), g);
        // A triangle-free graph has an empty 3-truss.
        assert_eq!(k_truss(&g, 3).m(), 0);
    }

    #[test]
    fn figure2_truss_facts() {
        // §2.1: the whole Figure 2 graph is a 3-truss; removing v7's three
        // edges yields a 4-truss; {v8..v12} induces a 5-truss.
        let g = crate::named::figure2();
        let t3 = k_truss(&g, 3);
        assert_eq!(t3.m(), g.m(), "entire graph is a 3-truss");

        let t4 = k_truss(&g, 4);
        assert_eq!(t4.m(), g.m() - 3, "4-truss drops exactly v7's 3 edges");
        assert_eq!(t4.degree(6), 0, "v7 (id 6) is isolated in the 4-truss");

        let t5 = k_truss(&g, 5);
        let expected: Vec<(VertexId, VertexId)> = (7..12)
            .flat_map(|a| ((a + 1)..12).map(move |b| (a as VertexId, b as VertexId)))
            .collect();
        let got: Vec<_> = t5.edges().collect();
        assert_eq!(got, expected, "5-truss is exactly the K5 on v8..v12");
    }

    #[test]
    fn trussness_levels_nested() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = gen::gnp(40, 0.3, &mut rng);
        let (idx, t) = trussness(&g);
        // An edge with trussness τ must appear in the τ-truss and not in the
        // (τ+1)-truss.
        for (e, &(u, v)) in idx.edges.iter().enumerate() {
            let tau = t[e] as usize;
            assert!(k_truss(&g, tau).has_edge(u, v));
            assert!(!k_truss(&g, tau + 1).has_edge(u, v));
        }
    }

    #[test]
    fn truss_is_subgraph_of_core() {
        // §2.1: the k-truss is a subgraph of the (k−1)-core.
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gen::gnp(50, 0.25, &mut rng);
        for k in 3..7 {
            let t = k_truss(&g, k);
            let core_vs: std::collections::HashSet<_> =
                crate::degeneracy::k_core_vertices(&g, k - 1)
                    .into_iter()
                    .collect();
            for (u, v) in t.edges() {
                assert!(core_vs.contains(&u) && core_vs.contains(&v), "k={k}");
            }
        }
    }
}
