//! The core graph type: an immutable, unweighted, undirected simple graph in
//! compressed sparse row (CSR) form with `u32` vertex identifiers and sorted
//! neighbour slices.

use crate::bitset::BitSet;

/// Vertex identifier. `u32` halves the memory traffic of `usize` ids on
/// 64-bit targets, which matters in the branch-and-bound inner loops.
pub type VertexId = u32;

/// An immutable undirected simple graph (no self-loops, no parallel edges)
/// stored in CSR form.
///
/// ```
/// use kdc_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.neighbors(2), &[0, 1, 3]);
/// assert!(g.is_k_defective_clique(&[0, 1, 2, 3], 2));
/// assert!(!g.is_k_defective_clique(&[0, 1, 2, 3], 1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    neighbors: Vec<VertexId>,
    /// Number of undirected edges.
    m: usize,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list. Self-loops are
    /// dropped and duplicate/reversed edges are merged.
    ///
    /// # Panics
    /// Panics if an endpoint is `≥ n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u}, {v}) out of range for n = {n}"
            );
            if u == v {
                continue;
            }
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        Self::from_adjacency(adj)
    }

    /// Builds a graph from per-vertex adjacency lists. Lists are sorted and
    /// deduplicated; symmetry is enforced by panicking in debug builds.
    pub fn from_adjacency(mut adj: Vec<Vec<VertexId>>) -> Self {
        let n = adj.len();
        let mut m = 0usize;
        for (v, list) in adj.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            list.retain(|&u| u as usize != v);
            m += list.len();
        }
        debug_assert!(
            {
                let probe =
                    |a: &Vec<Vec<VertexId>>, u: usize, v: VertexId| a[u].binary_search(&v).is_ok();
                adj.iter()
                    .enumerate()
                    .all(|(v, list)| list.iter().all(|&u| probe(&adj, u as usize, v as VertexId)))
            },
            "adjacency lists must be symmetric"
        );
        debug_assert_eq!(m % 2, 0, "directed half-edges must pair up");
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(m);
        offsets.push(0);
        for list in &adj {
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len());
        }
        Graph {
            offsets,
            neighbors,
            m: m / 2,
        }
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
            m: 0,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Adjacency test via binary search over the sorted neighbour slice.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterates all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n() as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// All vertex ids, `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.n() as VertexId
    }

    /// Maximum degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Edge density `m / C(n, 2)`; 0 for `n < 2`.
    pub fn density(&self) -> f64 {
        let n = self.n();
        if n < 2 {
            return 0.0;
        }
        self.m as f64 / (n as f64 * (n as f64 - 1.0) / 2.0)
    }

    /// Number of edges present among the vertices of `set`.
    pub fn edges_within(&self, set: &[VertexId]) -> usize {
        let mask: BitSet = set.iter().map(|&v| v as usize).collect();
        let in_set = |v: VertexId| (v as usize) < mask.capacity() && mask.contains(v as usize);
        set.iter()
            .map(|&u| {
                self.neighbors(u)
                    .iter()
                    .filter(|&&v| u < v && in_set(v))
                    .count()
            })
            .sum()
    }

    /// Number of edges *missing* among the vertices of `set` (the paper's
    /// `|Ē(S)|`). Duplicate vertices in `set` are rejected by a panic.
    pub fn missing_edges_within(&self, set: &[VertexId]) -> usize {
        let s = set.len();
        let mut sorted = set.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), s, "vertex set contains duplicates");
        s * (s.saturating_sub(1)) / 2 - self.edges_within(set)
    }

    /// Whether `set` induces a `k`-defective clique (Definition 2.2).
    pub fn is_k_defective_clique(&self, set: &[VertexId], k: usize) -> bool {
        self.missing_edges_within(set) <= k
    }

    /// The subgraph induced by `keep` (in the given order), relabelled to
    /// `0..keep.len()`. Returns the subgraph and the mapping from new id to
    /// original id (i.e. `keep` itself, copied).
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let n = self.n();
        let mut new_id: Vec<u32> = vec![u32::MAX; n];
        for (i, &v) in keep.iter().enumerate() {
            assert!(
                new_id[v as usize] == u32::MAX,
                "duplicate vertex {v} in induced set"
            );
            new_id[v as usize] = i as u32;
        }
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); keep.len()];
        for (i, &v) in keep.iter().enumerate() {
            for &w in self.neighbors(v) {
                let nw = new_id[w as usize];
                if nw != u32::MAX {
                    adj[i].push(nw);
                }
            }
        }
        (Graph::from_adjacency(adj), keep.to_vec())
    }

    /// The subgraph with the vertex set intact but only the edges for which
    /// `keep_edge(u, v)` (called with `u < v`) returns `true`.
    pub fn edge_subgraph(&self, mut keep_edge: impl FnMut(VertexId, VertexId) -> bool) -> Graph {
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); self.n()];
        for (u, v) in self.edges() {
            if keep_edge(u, v) {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
        Graph::from_adjacency(adj)
    }

    /// Number of triangles each edge participates in, keyed by edge position
    /// in [`Graph::edges`] order, plus the total triangle count.
    pub fn triangle_count(&self) -> usize {
        // Orient edges from lower-degree to higher-degree endpoints (ties by
        // id) and intersect forward adjacencies: O(δ·m)-style counting.
        let rank = |v: VertexId| (self.degree(v), v);
        let mut total = 0usize;
        let mut marker = vec![false; self.n()];
        for u in 0..self.n() as VertexId {
            let fwd: Vec<VertexId> = self
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&v| rank(v) > rank(u))
                .collect();
            for &v in &fwd {
                marker[v as usize] = true;
            }
            for &v in &fwd {
                for &w in self.neighbors(v) {
                    if rank(w) > rank(v) && marker[w as usize] {
                        total += 1;
                    }
                }
            }
            for &v in &fwd {
                marker[v as usize] = false;
            }
        }
        total
    }

    /// Whether the graph is connected (vacuously true for `n ≤ 1`).
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0 as VertexId];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == n
    }

    /// The complement graph (useful in tests: a k-defective clique in `G` of
    /// size `s` is a vertex set inducing ≤ k edges in the complement).
    pub fn complement(&self) -> Graph {
        let n = self.n();
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for u in 0..n as VertexId {
            let nbrs = self.neighbors(u);
            let mut it = nbrs.iter().peekable();
            for v in 0..n as VertexId {
                if v == u {
                    continue;
                }
                while let Some(&&h) = it.peek() {
                    if h < v {
                        it.next();
                    } else {
                        break;
                    }
                }
                if it.peek() != Some(&&v) {
                    adj[u as usize].push(v);
                }
            }
        }
        Graph::from_adjacency(adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn basic_counts() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path4();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn has_edge_probes_hubs_from_the_small_side() {
        // A hub of degree n − 1 plus a sparse rim: every query must agree
        // regardless of argument order (the probe runs over the smaller of
        // the two adjacency lists, so hub queries are O(log d_min)).
        let n = 64u32;
        let mut edges: Vec<(VertexId, VertexId)> = (1..n).map(|v| (0, v)).collect();
        edges.push((1, 2));
        let g = Graph::from_edges(n as usize, &edges);
        assert_eq!(g.degree(0), (n - 1) as usize);
        for v in 1..n {
            assert!(g.has_edge(0, v) && g.has_edge(v, 0));
        }
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1));
        for v in 3..n {
            assert!(!g.has_edge(1, v) && !g.has_edge(v, 1), "v = {v}");
        }
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = path4();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn missing_edges_and_defective_check() {
        let g = path4();
        // {0,1,2} misses (0,2): a 1-defective clique but not a clique.
        assert_eq!(g.missing_edges_within(&[0, 1, 2]), 1);
        assert!(g.is_k_defective_clique(&[0, 1, 2], 1));
        assert!(!g.is_k_defective_clique(&[0, 1, 2], 0));
        // The whole path misses 3 of 6 edges.
        assert_eq!(g.missing_edges_within(&[0, 1, 2, 3]), 3);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = path4();
        let (sub, map) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2);
        assert_eq!(map, vec![1, 2, 3]);
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2) && !sub.has_edge(0, 2));
    }

    #[test]
    fn edge_subgraph_filters() {
        let g = path4();
        let h = g.edge_subgraph(|u, v| (u, v) != (1, 2));
        assert_eq!(h.m(), 2);
        assert_eq!(h.n(), 4);
        assert!(!h.has_edge(1, 2));
    }

    #[test]
    fn triangles_counted() {
        let k4 = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(k4.triangle_count(), 4);
        assert_eq!(path4().triangle_count(), 0);
    }

    #[test]
    fn connectivity() {
        assert!(path4().is_connected());
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert!(Graph::empty(1).is_connected());
        assert!(Graph::empty(0).is_connected());
        assert!(!Graph::empty(2).is_connected());
    }

    #[test]
    fn complement_involution() {
        let g = path4();
        let c = g.complement();
        assert_eq!(c.m(), 6 - 3);
        assert!(c.has_edge(0, 2) && c.has_edge(0, 3) && c.has_edge(1, 3));
        assert_eq!(c.complement(), g);
    }

    #[test]
    fn density_endpoints() {
        assert_eq!(Graph::empty(5).density(), 0.0);
        let k3 = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!((k3.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, &[(0, 2)]);
    }
}
