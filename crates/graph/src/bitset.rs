//! Fixed-capacity bitsets over `u64` words, plus a contiguous bit-matrix.
//!
//! These are the workhorses of the dense search path: adjacency tests become
//! single bit probes and common-neighbour counts become word-wise popcounts.
//! The free functions at the bottom are masked word kernels that fuse a set
//! operation with iteration or counting, so no intermediate set is
//! materialised and zero words cost one comparison each — the
//! branch-and-bound engine's hot sweeps run on [`for_each_bit_and`],
//! [`for_each_bit_and_not`], [`popcount_and`] and [`popcount_and3`];
//! [`popcount_and_not`] completes the family for symmetry.

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `nbits` bits.
#[inline]
pub fn words_for(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

/// A fixed-capacity set of `usize` values in `[0, capacity)` backed by `u64`
/// words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `[0, capacity)`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; words_for(capacity)],
            capacity,
        }
    }

    /// Creates a set containing every value in `[0, capacity)`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim_tail();
        s
    }

    /// The maximum value (exclusive) this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears bits beyond `capacity` in the final partial word.
    #[inline]
    fn trim_tail(&mut self) {
        let rem = self.capacity % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Inserts `i`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Tests membership of `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Re-dimensions the set to `capacity` with every value present, reusing
    /// the word buffer (no allocation when the new capacity needs no more
    /// words than a previous one).
    pub fn reset_full(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.words.clear();
        self.words.resize(words_for(capacity), !0u64);
        self.trim_tail();
    }

    /// `self ∩ other` element count; the sets must share a capacity.
    #[inline]
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place `self \= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place `self ∩= words` against a raw word slice (e.g. a
    /// [`BitMatrix`] row of matching column capacity).
    pub fn intersect_with_words(&mut self, words: &[u64]) {
        debug_assert_eq!(self.words.len(), words.len());
        for (a, b) in self.words.iter_mut().zip(words) {
            *a &= b;
        }
    }

    /// In-place `self \= words` against a raw word slice.
    pub fn difference_with_words(&mut self, words: &[u64]) {
        debug_assert_eq!(self.words.len(), words.len());
        for (a, b) in self.words.iter_mut().zip(words) {
            *a &= !b;
        }
    }

    /// Iterates set elements in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterates set elements `≥ start` in increasing order. Resuming from a
    /// known position skips the leading words entirely instead of re-walking
    /// them bit by bit.
    pub fn iter_from(&self, start: usize) -> BitIter<'_> {
        let word_idx = start / WORD_BITS;
        if word_idx >= self.words.len() {
            return BitIter {
                words: &self.words,
                word_idx: self.words.len().saturating_sub(1),
                current: 0,
            };
        }
        // Mask off the bits below `start` in the first word.
        let current = self.words[word_idx] & (!0u64 << (start % WORD_BITS));
        BitIter {
            words: &self.words,
            word_idx,
            current,
        }
    }

    /// Calls `f(word_index, word)` for every *non-zero* storage word, in
    /// increasing word order. The word-granular companion to [`BitSet::iter`]
    /// for kernels that process 64 elements at a time.
    #[inline]
    pub fn for_each_word(&self, mut f: impl FnMut(usize, u64)) {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                f(wi, w);
            }
        }
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Raw word access (used by [`BitMatrix`] helpers).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

// ---- masked word kernels ---------------------------------------------------
//
// The engine's hot loops are expressed over raw word slices (a `BitSet`'s
// words, a `BitMatrix` row, or a cached neighbour mask) so one set of kernels
// serves every storage combination.

/// Calls `f(i)` for every bit `i` set in `a ∩ b`. Zero words are skipped with
/// one comparison; set bits are extracted with `trailing_zeros`.
#[inline]
pub fn for_each_bit_and(a: &[u64], b: &[u64], mut f: impl FnMut(usize)) {
    debug_assert_eq!(a.len(), b.len());
    for (wi, (&x, &y)) in a.iter().zip(b).enumerate() {
        let mut bits = x & y;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            f(wi * WORD_BITS + bit);
            bits &= bits - 1;
        }
    }
}

/// Calls `f(i)` for every bit `i` set in `a \ b`.
#[inline]
pub fn for_each_bit_and_not(a: &[u64], b: &[u64], mut f: impl FnMut(usize)) {
    debug_assert_eq!(a.len(), b.len());
    for (wi, (&x, &y)) in a.iter().zip(b).enumerate() {
        let mut bits = x & !y;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            f(wi * WORD_BITS + bit);
            bits &= bits - 1;
        }
    }
}

/// `|a ∩ b|` over raw word slices.
#[inline]
pub fn popcount_and(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// `|a \ b|` over raw word slices.
#[inline]
pub fn popcount_and_not(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & !y).count_ones() as usize)
        .sum()
}

/// `|a ∩ b ∩ c|` over raw word slices (e.g. two adjacency rows against a
/// candidate mask: the common-neighbour count of RR4).
#[inline]
pub fn popcount_and3(a: &[u64], b: &[u64], c: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), c.len());
    a.iter()
        .zip(b)
        .zip(c)
        .map(|((x, y), z)| (x & y & z).count_ones() as usize)
        .sum()
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is one past the maximum element (or 0).
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over the elements of a [`BitSet`] (or a [`BitMatrix`] row).
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

/// A dense `rows × cols` bit-matrix stored as one contiguous `u64` buffer.
///
/// Used as an adjacency matrix for reduced search universes: row `u` holds the
/// neighbourhood of `u`, so adjacency is a bit probe and common-neighbourhood
/// sizes are word-wise popcounts.
#[derive(Clone, Debug)]
pub struct BitMatrix {
    words: Vec<u64>,
    words_per_row: usize,
    rows: usize,
    cols: usize,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols);
        BitMatrix {
            words: vec![0; rows * words_per_row],
            words_per_row,
            rows,
            cols,
        }
    }

    /// Re-dimensions to an all-zero `rows × cols` matrix, reusing the word
    /// buffer (no allocation when the new shape needs no more words than a
    /// previous one).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.words_per_row = words_for(cols);
        self.rows = rows;
        self.cols = cols;
        self.words.clear();
        self.words.resize(rows * self.words_per_row, 0);
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets bit `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.rows && c < self.cols);
        self.words[r * self.words_per_row + c / WORD_BITS] |= 1u64 << (c % WORD_BITS);
    }

    /// Clears bit `(r, c)`.
    #[inline]
    pub fn unset(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.rows && c < self.cols);
        self.words[r * self.words_per_row + c / WORD_BITS] &= !(1u64 << (c % WORD_BITS));
    }

    /// Tests bit `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        self.words[r * self.words_per_row + c / WORD_BITS] & (1u64 << (c % WORD_BITS)) != 0
    }

    /// The words of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Iterates the set columns of row `r`.
    pub fn row_iter(&self, r: usize) -> BitIter<'_> {
        let row = self.row(r);
        BitIter {
            words: row,
            word_idx: 0,
            current: row.first().copied().unwrap_or(0),
        }
    }

    /// Popcount of row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `|row(a) ∩ row(b)|` — e.g. the number of common neighbours of `a`
    /// and `b` when the matrix is an adjacency matrix.
    #[inline]
    pub fn row_intersection_len(&self, a: usize, b: usize) -> usize {
        self.row(a)
            .iter()
            .zip(self.row(b))
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// `|row(r) ∩ mask|` for an external mask with the same column capacity.
    #[inline]
    pub fn row_mask_intersection_len(&self, r: usize, mask: &BitSet) -> usize {
        debug_assert_eq!(mask.capacity(), self.cols);
        self.row(r)
            .iter()
            .zip(mask.words())
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// `|row(a) ∩ row(b) ∩ mask|`.
    #[inline]
    pub fn row_row_mask_intersection_len(&self, a: usize, b: usize, mask: &BitSet) -> usize {
        self.row(a)
            .iter()
            .zip(self.row(b))
            .zip(mask.words())
            .map(|((x, y), m)| (x & y & m).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_elements() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(62));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn full_respects_capacity() {
        for cap in [0, 1, 63, 64, 65, 128, 200] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "capacity {cap}");
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..cap).collect::<Vec<_>>());
        }
    }

    #[test]
    fn iter_yields_sorted_elements() {
        let mut s = BitSet::new(300);
        for i in [5usize, 7, 64, 65, 190, 299, 0] {
            s.insert(i);
        }
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, 5, 7, 64, 65, 190, 299]
        );
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 2, 3, 64, 65].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        for i in [2usize, 3, 4, 65] {
            b.insert(i);
        }
        assert_eq!(a.intersection_len(&b), 3);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3, 65]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 6);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 64]);
    }

    #[test]
    fn iter_from_starts_at_the_right_bit() {
        let mut s = BitSet::new(400);
        for i in [0usize, 63, 64, 130, 131, 320, 399] {
            s.insert(i);
        }
        assert_eq!(
            s.iter_from(0).collect::<Vec<_>>(),
            s.iter().collect::<Vec<_>>()
        );
        assert_eq!(
            s.iter_from(64).collect::<Vec<_>>(),
            vec![64, 130, 131, 320, 399]
        );
        assert_eq!(
            s.iter_from(65).collect::<Vec<_>>(),
            vec![130, 131, 320, 399]
        );
        assert_eq!(s.iter_from(131).collect::<Vec<_>>(), vec![131, 320, 399]);
        assert_eq!(s.iter_from(399).collect::<Vec<_>>(), vec![399]);
        assert_eq!(s.iter_from(400).count(), 0, "past capacity");
        assert_eq!(s.iter_from(4000).count(), 0, "far past capacity");
        assert_eq!(BitSet::new(0).iter_from(0).count(), 0, "empty set");
    }

    #[test]
    fn iter_skips_long_zero_word_runs() {
        // One bit at the very end of a 100-word set: iteration must reach it
        // (and, structurally, skip the 99 zero words a word at a time).
        let mut s = BitSet::new(6400);
        s.insert(6399);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![6399]);
        s.insert(0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 6399]);
    }

    #[test]
    fn for_each_word_visits_nonzero_words_only() {
        let mut s = BitSet::new(300);
        s.insert(1);
        s.insert(65);
        s.insert(66);
        s.insert(299);
        let mut seen = Vec::new();
        s.for_each_word(|wi, w| seen.push((wi, w.count_ones())));
        assert_eq!(seen, vec![(0, 1), (1, 2), (4, 1)]);
    }

    #[test]
    fn masked_word_kernels_match_set_algebra() {
        let a: BitSet = [1usize, 2, 3, 64, 65, 130].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        for i in [2usize, 3, 4, 65, 129] {
            b.insert(i);
        }
        let mut and = Vec::new();
        for_each_bit_and(a.words(), b.words(), |i| and.push(i));
        assert_eq!(and, vec![2, 3, 65]);
        let mut diff = Vec::new();
        for_each_bit_and_not(a.words(), b.words(), |i| diff.push(i));
        assert_eq!(diff, vec![1, 64, 130]);
        assert_eq!(popcount_and(a.words(), b.words()), 3);
        assert_eq!(popcount_and_not(a.words(), b.words()), 3);
        let c = BitSet::full(a.capacity());
        assert_eq!(popcount_and3(a.words(), b.words(), c.words()), 3);
        let mut none = BitSet::new(a.capacity());
        none.insert(2);
        assert_eq!(popcount_and3(a.words(), b.words(), none.words()), 1);
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let s: BitSet = [3usize, 100].into_iter().collect();
        assert_eq!(s.capacity(), 101);
        assert!(s.contains(3) && s.contains(100));
    }

    #[test]
    fn matrix_set_get_unset() {
        let mut m = BitMatrix::new(5, 130);
        m.set(0, 0);
        m.set(4, 129);
        m.set(2, 64);
        assert!(m.get(0, 0) && m.get(4, 129) && m.get(2, 64));
        assert!(!m.get(0, 1));
        m.unset(2, 64);
        assert!(!m.get(2, 64));
    }

    #[test]
    fn matrix_row_ops() {
        let mut m = BitMatrix::new(3, 100);
        for c in [1usize, 50, 99] {
            m.set(0, c);
        }
        for c in [50usize, 99, 3] {
            m.set(1, c);
        }
        assert_eq!(m.row_len(0), 3);
        assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![1, 50, 99]);
        assert_eq!(m.row_intersection_len(0, 1), 2);

        let mask: BitSet = [50usize, 1].into_iter().collect();
        let mut mask_full = BitSet::new(100);
        for i in mask.iter() {
            mask_full.insert(i);
        }
        assert_eq!(m.row_mask_intersection_len(0, &mask_full), 2);
        assert_eq!(m.row_row_mask_intersection_len(0, 1, &mask_full), 1);
    }
}
