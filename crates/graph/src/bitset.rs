//! Fixed-capacity bitsets over `u64` words, plus a contiguous bit-matrix.
//!
//! These are the workhorses of the dense search path: adjacency tests become
//! single bit probes and common-neighbour counts become word-wise popcounts.

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

#[inline]
fn words_for(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

/// A fixed-capacity set of `usize` values in `[0, capacity)` backed by `u64`
/// words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `[0, capacity)`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; words_for(capacity)],
            capacity,
        }
    }

    /// Creates a set containing every value in `[0, capacity)`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim_tail();
        s
    }

    /// The maximum value (exclusive) this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clears bits beyond `capacity` in the final partial word.
    #[inline]
    fn trim_tail(&mut self) {
        let rem = self.capacity % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Inserts `i`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Removes `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.capacity);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Tests membership of `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Re-dimensions the set to `capacity` with every value present, reusing
    /// the word buffer (no allocation when the new capacity needs no more
    /// words than a previous one).
    pub fn reset_full(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.words.clear();
        self.words.resize(words_for(capacity), !0u64);
        self.trim_tail();
    }

    /// `self ∩ other` element count; the sets must share a capacity.
    #[inline]
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place `self \= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place `self ∩= words` against a raw word slice (e.g. a
    /// [`BitMatrix`] row of matching column capacity).
    pub fn intersect_with_words(&mut self, words: &[u64]) {
        debug_assert_eq!(self.words.len(), words.len());
        for (a, b) in self.words.iter_mut().zip(words) {
            *a &= b;
        }
    }

    /// In-place `self \= words` against a raw word slice.
    pub fn difference_with_words(&mut self, words: &[u64]) {
        debug_assert_eq!(self.words.len(), words.len());
        for (a, b) in self.words.iter_mut().zip(words) {
            *a &= !b;
        }
    }

    /// Iterates set elements in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Raw word access (used by [`BitMatrix`] helpers).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is one past the maximum element (or 0).
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over the elements of a [`BitSet`] (or a [`BitMatrix`] row).
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

/// A dense `rows × cols` bit-matrix stored as one contiguous `u64` buffer.
///
/// Used as an adjacency matrix for reduced search universes: row `u` holds the
/// neighbourhood of `u`, so adjacency is a bit probe and common-neighbourhood
/// sizes are word-wise popcounts.
#[derive(Clone, Debug)]
pub struct BitMatrix {
    words: Vec<u64>,
    words_per_row: usize,
    rows: usize,
    cols: usize,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = words_for(cols);
        BitMatrix {
            words: vec![0; rows * words_per_row],
            words_per_row,
            rows,
            cols,
        }
    }

    /// Re-dimensions to an all-zero `rows × cols` matrix, reusing the word
    /// buffer (no allocation when the new shape needs no more words than a
    /// previous one).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.words_per_row = words_for(cols);
        self.rows = rows;
        self.cols = cols;
        self.words.clear();
        self.words.resize(rows * self.words_per_row, 0);
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Sets bit `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.rows && c < self.cols);
        self.words[r * self.words_per_row + c / WORD_BITS] |= 1u64 << (c % WORD_BITS);
    }

    /// Clears bit `(r, c)`.
    #[inline]
    pub fn unset(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.rows && c < self.cols);
        self.words[r * self.words_per_row + c / WORD_BITS] &= !(1u64 << (c % WORD_BITS));
    }

    /// Tests bit `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.rows && c < self.cols);
        self.words[r * self.words_per_row + c / WORD_BITS] & (1u64 << (c % WORD_BITS)) != 0
    }

    /// The words of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Iterates the set columns of row `r`.
    pub fn row_iter(&self, r: usize) -> BitIter<'_> {
        let row = self.row(r);
        BitIter {
            words: row,
            word_idx: 0,
            current: row.first().copied().unwrap_or(0),
        }
    }

    /// Popcount of row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `|row(a) ∩ row(b)|` — e.g. the number of common neighbours of `a`
    /// and `b` when the matrix is an adjacency matrix.
    #[inline]
    pub fn row_intersection_len(&self, a: usize, b: usize) -> usize {
        self.row(a)
            .iter()
            .zip(self.row(b))
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// `|row(r) ∩ mask|` for an external mask with the same column capacity.
    #[inline]
    pub fn row_mask_intersection_len(&self, r: usize, mask: &BitSet) -> usize {
        debug_assert_eq!(mask.capacity(), self.cols);
        self.row(r)
            .iter()
            .zip(mask.words())
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// `|row(a) ∩ row(b) ∩ mask|`.
    #[inline]
    pub fn row_row_mask_intersection_len(&self, a: usize, b: usize, mask: &BitSet) -> usize {
        self.row(a)
            .iter()
            .zip(self.row(b))
            .zip(mask.words())
            .map(|((x, y), m)| (x & y & m).count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_elements() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64));
        assert!(!s.contains(62));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn full_respects_capacity() {
        for cap in [0, 1, 63, 64, 65, 128, 200] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "capacity {cap}");
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..cap).collect::<Vec<_>>());
        }
    }

    #[test]
    fn iter_yields_sorted_elements() {
        let mut s = BitSet::new(300);
        for i in [5usize, 7, 64, 65, 190, 299, 0] {
            s.insert(i);
        }
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![0, 5, 7, 64, 65, 190, 299]
        );
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 2, 3, 64, 65].into_iter().collect();
        let mut b = BitSet::new(a.capacity());
        for i in [2usize, 3, 4, 65] {
            b.insert(i);
        }
        assert_eq!(a.intersection_len(&b), 3);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3, 65]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 6);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 64]);
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let s: BitSet = [3usize, 100].into_iter().collect();
        assert_eq!(s.capacity(), 101);
        assert!(s.contains(3) && s.contains(100));
    }

    #[test]
    fn matrix_set_get_unset() {
        let mut m = BitMatrix::new(5, 130);
        m.set(0, 0);
        m.set(4, 129);
        m.set(2, 64);
        assert!(m.get(0, 0) && m.get(4, 129) && m.get(2, 64));
        assert!(!m.get(0, 1));
        m.unset(2, 64);
        assert!(!m.get(2, 64));
    }

    #[test]
    fn matrix_row_ops() {
        let mut m = BitMatrix::new(3, 100);
        for c in [1usize, 50, 99] {
            m.set(0, c);
        }
        for c in [50usize, 99, 3] {
            m.set(1, c);
        }
        assert_eq!(m.row_len(0), 3);
        assert_eq!(m.row_iter(0).collect::<Vec<_>>(), vec![1, 50, 99]);
        assert_eq!(m.row_intersection_len(0, 1), 2);

        let mask: BitSet = [50usize, 1].into_iter().collect();
        let mut mask_full = BitSet::new(100);
        for i in mask.iter() {
            mask_full.insert(i);
        }
        assert_eq!(m.row_mask_intersection_len(0, &mask_full), 2);
        assert_eq!(m.row_row_mask_intersection_len(0, 1, &mask_full), 1);
    }
}
