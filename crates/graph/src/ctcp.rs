//! Incremental core–truss co-pruning (CTCP).
//!
//! Reduction rules RR5 and RR6 shrink the input graph against a lower bound
//! `lb`: RR5 keeps the `(lb − k)`-core (a vertex of degree `< lb − k` cannot
//! join a solution larger than `lb`), RR6 keeps the `(lb − k + 1)`-truss (an
//! edge whose endpoints share `< lb − k − 1` common neighbours cannot lie
//! inside one). Recomputing either fixpoint from scratch every time the
//! incumbent improves costs a full `O(δ(G)·m)` triangle count per call.
//!
//! [`Ctcp`] instead *maintains* per-vertex degrees and per-edge triangle
//! supports alongside alive flags, and propagates removals through a work
//! queue: deleting an edge decrements two degrees and the supports of the
//! edges of every triangle through it; deleting a vertex cascades into its
//! incident edges. Each call to [`Ctcp::tighten`] with a (monotonically
//! non-decreasing) lower bound therefore pays only for the vertices, edges
//! and triangles it actually touches — the classic CTCP scheme of Chang
//! (SIGMOD 2023), which computes the *joint* core+truss fixpoint (a subgraph
//! of what one core → truss → core sweep leaves behind, and never anything a
//! solution larger than `lb` could use).
//!
//! Degrees and supports only ever decrease, so threshold crossings between
//! two `tighten` calls are found by draining degree/support buckets rather
//! than rescanning the graph: every decrement files the vertex (edge) under
//! its new degree (support), and a `tighten` at a higher bound drains exactly
//! the buckets the raised thresholds newly cover.
//!
//! ```
//! use kdc_graph::ctcp::Ctcp;
//! use kdc_graph::Graph;
//!
//! // A triangle with a pendant path: tightening to lb = 2 with k = 0 cuts
//! // every vertex of degree < 2 and every edge in no triangle, leaving
//! // exactly the triangle.
//! let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
//! let mut ctcp = Ctcp::new(&g, 0);
//! let removed = ctcp.tighten(2);
//! assert!(removed.vertices.contains(&4));
//! assert_eq!(ctcp.alive_vertices(), vec![0, 1, 2]);
//! ```

use crate::graph::{Graph, VertexId};
use crate::scratch::ScratchMap;
use crate::truss::EdgeIndex;

/// What one [`Ctcp::tighten`] call deleted.
#[derive(Clone, Debug, Default)]
pub struct Removals {
    /// Vertices removed by this call (original graph ids, removal order).
    pub vertices: Vec<VertexId>,
    /// Number of edges removed by this call (including edges that died with
    /// a removed endpoint).
    pub edges: u64,
}

impl Removals {
    /// Whether the call removed nothing.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty() && self.edges == 0
    }
}

/// Incremental CTCP reducer over a fixed input graph.
///
/// Construct once per `(graph, k)` pair, then call [`Ctcp::tighten`] with a
/// non-decreasing lower bound; each call propagates exactly the new
/// removals. See the module docs for the algorithm.
#[derive(Debug)]
pub struct Ctcp {
    k: usize,
    /// Highest lower bound applied so far (tighten clamps to max).
    lb: usize,
    /// Whether the degree (RR5 / core) rule is active.
    core_rule: bool,
    /// Whether the support (RR6 / truss) rule is active.
    truss_rule: bool,

    /// `edges[e] = (u, v)` with `u < v`; `inc[v]` = sorted `(neighbour, e)`.
    idx: EdgeIndex,
    /// Triangle support per edge (empty when the truss rule is off).
    support: Vec<u32>,
    /// Alive degree per vertex.
    deg: Vec<u32>,
    v_alive: Vec<bool>,
    e_alive: Vec<bool>,
    /// Already queued for removal (never cleared: queued ⇒ removed).
    v_queued: Vec<bool>,
    e_queued: Vec<bool>,
    /// `vbucket[d]` holds vertices filed when their degree became `d`
    /// (lazily invalidated); likewise `ebucket[s]` for edge supports.
    vbucket: Vec<Vec<u32>>,
    ebucket: Vec<Vec<u32>>,
    /// Degree / support thresholds already drained from the buckets
    /// (exclusive: buckets `< deg_t` are empty of live entries).
    deg_t: u32,
    supp_t: u32,

    alive_n: usize,
    alive_m: usize,
    /// Cumulative removal counters (across all tighten calls).
    vertex_removals: u64,
    edge_removals: u64,

    mark: ScratchMap,
    vqueue: Vec<u32>,
    equeue: Vec<u32>,
}

impl Ctcp {
    /// Builds the reducer with both rules (RR5 + RR6) active. Costs one
    /// triangle-support computation, `O(δ(G)·m)`.
    pub fn new(g: &Graph, k: usize) -> Self {
        Self::with_rules(g, k, true, true)
    }

    /// Builds the reducer with each rule individually toggled (matching
    /// `SolverConfig::enable_rr5` / `enable_rr6`). With the truss rule off
    /// the support computation is skipped entirely and edges only die with
    /// their endpoints.
    pub fn with_rules(g: &Graph, k: usize, core_rule: bool, truss_rule: bool) -> Self {
        let n = g.n();
        let (idx, support) = if truss_rule {
            crate::truss::edge_supports(g)
        } else {
            (EdgeIndex::new(g), Vec::new())
        };
        let ne = idx.edges.len();
        let deg: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v) as u32).collect();

        let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
        let mut vbucket: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
        for (v, &d) in deg.iter().enumerate() {
            vbucket[d as usize].push(v as u32);
        }
        let max_supp = support.iter().copied().max().unwrap_or(0) as usize;
        let mut ebucket: Vec<Vec<u32>> = vec![Vec::new(); max_supp + 1];
        for (e, &s) in support.iter().enumerate() {
            ebucket[s as usize].push(e as u32);
        }

        Ctcp {
            k,
            lb: 0,
            core_rule,
            truss_rule,
            idx,
            support,
            deg,
            v_alive: vec![true; n],
            e_alive: vec![true; ne],
            v_queued: vec![false; n],
            e_queued: vec![false; ne],
            vbucket,
            ebucket,
            deg_t: 0,
            supp_t: 0,
            alive_n: n,
            alive_m: ne,
            vertex_removals: 0,
            edge_removals: 0,
            mark: ScratchMap::new(n),
            vqueue: Vec::new(),
            equeue: Vec::new(),
        }
    }

    /// The `k` this reducer was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The highest lower bound applied so far.
    pub fn lb(&self) -> usize {
        self.lb
    }

    /// `(core_rule, truss_rule)` as configured at construction.
    pub fn rules(&self) -> (bool, bool) {
        (self.core_rule, self.truss_rule)
    }

    /// Number of vertices of the input graph (alive or not).
    pub fn n(&self) -> usize {
        self.v_alive.len()
    }

    /// Surviving vertex count.
    pub fn alive_n(&self) -> usize {
        self.alive_n
    }

    /// Surviving edge count.
    pub fn alive_m(&self) -> usize {
        self.alive_m
    }

    /// Whether vertex `v` survives.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.v_alive[v as usize]
    }

    /// Cumulative `(vertex, edge)` removal counts across all tighten calls.
    pub fn removal_counters(&self) -> (u64, u64) {
        (self.vertex_removals, self.edge_removals)
    }

    /// Surviving vertices in ascending id order.
    pub fn alive_vertices(&self) -> Vec<VertexId> {
        (0..self.v_alive.len() as VertexId)
            .filter(|&v| self.v_alive[v as usize])
            .collect()
    }

    /// Raises the lower bound to `lb` (values below the current bound are
    /// clamped — removals are never undone) and propagates RR5/RR6 to the
    /// joint fixpoint. Returns what this call removed.
    // kdc-lint: hot-path
    pub fn tighten(&mut self, lb: usize) -> Removals {
        let lb = lb.max(self.lb);
        self.lb = lb;
        let new_deg_t = if self.core_rule {
            lb.saturating_sub(self.k).min(u32::MAX as usize) as u32
        } else {
            0
        };
        let new_supp_t = if self.truss_rule {
            lb.saturating_sub(self.k + 1).min(u32::MAX as usize) as u32
        } else {
            0
        };

        let mut out = Removals::default();
        let edges_before = self.edge_removals;

        // Drain the buckets the raised thresholds newly cover. Entries are
        // lazily invalidated: skip anything dead, already queued, or filed
        // under a stale degree/support (the live entry sits in a lower
        // bucket that this same ascending sweep already drained).
        for d in self.deg_t..new_deg_t.min(self.vbucket.len() as u32) {
            let mut bucket = std::mem::take(&mut self.vbucket[d as usize]);
            for v in bucket.drain(..) {
                if self.v_alive[v as usize]
                    && !self.v_queued[v as usize]
                    && self.deg[v as usize] == d
                {
                    self.v_queued[v as usize] = true;
                    self.vqueue.push(v);
                }
            }
        }
        for s in self.supp_t..new_supp_t.min(self.ebucket.len() as u32) {
            let mut bucket = std::mem::take(&mut self.ebucket[s as usize]);
            for e in bucket.drain(..) {
                if self.e_alive[e as usize]
                    && !self.e_queued[e as usize]
                    && self.support[e as usize] == s
                {
                    self.e_queued[e as usize] = true;
                    self.equeue.push(e);
                }
            }
        }
        self.deg_t = self.deg_t.max(new_deg_t);
        self.supp_t = self.supp_t.max(new_supp_t);

        while !self.vqueue.is_empty() || !self.equeue.is_empty() {
            if let Some(e) = self.equeue.pop() {
                if self.e_alive[e as usize] {
                    self.remove_edge(e);
                }
                continue;
            }
            let v = self.vqueue.pop().expect("queue checked non-empty");
            if self.v_alive[v as usize] {
                self.remove_vertex(v, &mut out.vertices);
            }
        }

        out.edges = self.edge_removals - edges_before;
        out
    }

    /// Applies a whole schedule of lower-bound steps in one queue drain:
    /// a single [`Ctcp::tighten`] at the schedule's maximum, which is
    /// semantically identical to calling `tighten` once per entry (in any
    /// order — tighten clamps to the running maximum; parity-tested in
    /// `tests/ctcp_prop.rs`) but pays one bucket sweep and one propagation
    /// pass instead of one per step. The schedule may arrive unsorted and
    /// with duplicates: reducing by maximum subsumes any sort + dedup, so
    /// callers holding several pending incumbent improvements (a decompose
    /// worker draining a shared incumbent, a batch sweep merging the
    /// witness sizes of its sub-queries, a warm service folding queued
    /// bounds) hand them over without pre-reducing; an empty slice is a
    /// no-op.
    pub fn tighten_batch(&mut self, lbs: &[usize]) -> Removals {
        match lbs.iter().copied().max() {
            Some(lb) => self.tighten(lb),
            None => Removals::default(),
        }
    }

    /// Files `v` under its (just decremented) degree, or queues it for
    /// removal when it crossed the active threshold.
    #[inline]
    fn refile_vertex(&mut self, v: u32) {
        let d = self.deg[v as usize];
        if d < self.deg_t {
            if !self.v_queued[v as usize] {
                self.v_queued[v as usize] = true;
                self.vqueue.push(v);
            }
        } else {
            self.vbucket[d as usize].push(v);
        }
    }

    /// Files edge `e` under its (just decremented) support, or queues it.
    #[inline]
    fn refile_edge(&mut self, e: u32) {
        let s = self.support[e as usize];
        if s < self.supp_t {
            if !self.e_queued[e as usize] {
                self.e_queued[e as usize] = true;
                self.equeue.push(e);
            }
        } else {
            self.ebucket[s as usize].push(e);
        }
    }

    /// Removes edge `e` (both endpoints alive): two degree decrements and a
    /// support decrement for both remaining edges of every triangle through
    /// `e`. Cost: the shorter incidence scan to mark, the longer to probe.
    fn remove_edge(&mut self, e: u32) {
        debug_assert!(self.e_alive[e as usize]);
        self.e_alive[e as usize] = false;
        self.alive_m -= 1;
        self.edge_removals += 1;
        let (u, v) = self.idx.edges[e as usize];
        debug_assert!(self.v_alive[u as usize] && self.v_alive[v as usize]);

        self.deg[u as usize] -= 1;
        self.deg[v as usize] -= 1;
        self.refile_vertex(u);
        self.refile_vertex(v);

        if !self.truss_rule {
            return;
        }
        // Common alive neighbours w: mark N(u) with the connecting edge id,
        // probe from v's side (marking the smaller incidence list first).
        let (a, b) = if self.idx.inc[u as usize].len() <= self.idx.inc[v as usize].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.mark.reset();
        for i in 0..self.idx.inc[a as usize].len() {
            let (w, ea) = self.idx.inc[a as usize][i];
            if self.e_alive[ea as usize] {
                self.mark.set(w as usize, ea as usize + 1);
            }
        }
        for i in 0..self.idx.inc[b as usize].len() {
            let (w, eb) = self.idx.inc[b as usize][i];
            if !self.e_alive[eb as usize] {
                continue;
            }
            let stored = self.mark.get_or(w as usize, 0);
            if stored == 0 {
                continue;
            }
            let ea = (stored - 1) as u32;
            for edge in [ea, eb] {
                self.support[edge as usize] = self.support[edge as usize].saturating_sub(1);
                self.refile_edge(edge);
            }
        }
    }

    /// Removes vertex `v`: every incident alive edge dies (degree updates on
    /// the far endpoints), and the third edge of every triangle through `v`
    /// loses one support.
    fn remove_vertex(&mut self, v: u32, removed: &mut Vec<VertexId>) {
        debug_assert!(self.v_alive[v as usize]);
        self.v_alive[v as usize] = false;
        self.alive_n -= 1;
        self.vertex_removals += 1;
        removed.push(v);

        // Snapshot + mark the alive neighbourhood first: triangle support
        // updates must see the incident edges as they were at removal time.
        self.mark.reset();
        for i in 0..self.idx.inc[v as usize].len() {
            let (w, e) = self.idx.inc[v as usize][i];
            if self.e_alive[e as usize] {
                self.mark.set(w as usize, 1);
            }
        }

        if self.truss_rule {
            // For each triangle (v, w, x): the surviving edge (w, x) loses
            // one support. Enumerated from each alive neighbour w by probing
            // its incidence list against the mark, taking each pair once.
            for i in 0..self.idx.inc[v as usize].len() {
                let (w, ev) = self.idx.inc[v as usize][i];
                if !self.e_alive[ev as usize] {
                    continue;
                }
                for j in 0..self.idx.inc[w as usize].len() {
                    let (x, ewx) = self.idx.inc[w as usize][j];
                    if x > w && self.e_alive[ewx as usize] && self.mark.get_or(x as usize, 0) == 1 {
                        self.support[ewx as usize] = self.support[ewx as usize].saturating_sub(1);
                        self.refile_edge(ewx);
                    }
                }
            }
        }

        // Now retire the incident edges themselves.
        for i in 0..self.idx.inc[v as usize].len() {
            let (w, e) = self.idx.inc[v as usize][i];
            if !self.e_alive[e as usize] {
                continue;
            }
            self.e_alive[e as usize] = false;
            self.alive_m -= 1;
            self.edge_removals += 1;
            debug_assert!(self.v_alive[w as usize] || self.v_queued[w as usize]);
            if self.v_alive[w as usize] {
                self.deg[w as usize] -= 1;
                self.refile_vertex(w);
            }
        }
    }

    /// Extracts the surviving universe as relabelled sorted adjacency lists
    /// plus the new → old id map. Allocates; callers count this against
    /// `universe_rebuilds`.
    pub fn extract_universe(&self) -> (Vec<Vec<u32>>, Vec<VertexId>) {
        let keep = self.alive_vertices();
        let mut new_id: Vec<u32> = vec![u32::MAX; self.v_alive.len()];
        for (i, &v) in keep.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); keep.len()];
        for (i, &v) in keep.iter().enumerate() {
            for &(w, e) in &self.idx.inc[v as usize] {
                if self.e_alive[e as usize] {
                    adj[i].push(new_id[w as usize]);
                }
            }
            debug_assert!(adj[i].windows(2).all(|p| p[0] < p[1]));
        }
        (adj, keep)
    }

    /// Appends the alive neighbours of `v` (original ids, ascending) to
    /// `out` without allocating. Used by callers that maintain their own
    /// relabelling buffers.
    pub fn alive_neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) {
        for &(w, e) in &self.idx.inc[v as usize] {
            if self.e_alive[e as usize] {
                out.push(w);
            }
        }
    }
}

/// Reference implementation: iterates `truss_filter` + `k_core` from scratch
/// to the joint fixpoint. Returns the reduced, relabelled graph and the new
/// → old id map. Pays a full triangle count per pass; used by tests and the
/// scratch side of the `ctcp` bench to pin down what [`Ctcp::tighten`] must
/// produce.
pub fn scratch_fixpoint(g: &Graph, k: usize, lb: usize) -> (Graph, Vec<VertexId>) {
    scratch_fixpoint_rules(g, k, lb, true, true)
}

/// [`scratch_fixpoint`] with each rule individually toggled.
pub fn scratch_fixpoint_rules(
    g: &Graph,
    k: usize,
    lb: usize,
    core_rule: bool,
    truss_rule: bool,
) -> (Graph, Vec<VertexId>) {
    let deg_t = if core_rule { lb.saturating_sub(k) } else { 0 };
    let supp_t = if truss_rule {
        lb.saturating_sub(k + 1) as u32
    } else {
        0
    };
    let mut current = g.clone();
    let mut keep: Vec<VertexId> = g.vertices().collect();
    loop {
        let n_before = current.n();
        let m_before = current.m();
        if supp_t > 0 {
            current = crate::truss::truss_filter(&current, supp_t);
        }
        if deg_t > 0 {
            // Core removals drop vertices (and with them edges); truss-only
            // reductions leave every vertex alive, exactly like CTCP with
            // the core rule off.
            let (cored, sub_keep) = crate::degeneracy::k_core(&current, deg_t);
            keep = sub_keep.iter().map(|&v| keep[v as usize]).collect();
            current = cored;
        }
        if current.n() == n_before && current.m() == m_before {
            break;
        }
    }
    (current, keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    /// Alive set of a fresh CTCP tightened once.
    fn ctcp_alive(g: &Graph, k: usize, lb: usize) -> Vec<VertexId> {
        let mut c = Ctcp::new(g, k);
        c.tighten(lb);
        c.alive_vertices()
    }

    #[test]
    fn no_rules_fire_below_thresholds() {
        let g = gen::complete(6);
        let mut c = Ctcp::new(&g, 2);
        assert!(c.tighten(0).is_empty());
        assert!(c.tighten(2).is_empty());
        assert_eq!(c.alive_n(), 6);
        assert_eq!(c.alive_m(), 15);
    }

    #[test]
    fn pendant_path_is_peeled() {
        // Triangle + pendant path; lb = 2, k = 0 ⇒ deg < 2 peels the path.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let alive = ctcp_alive(&g, 0, 2);
        assert_eq!(alive, vec![0, 1, 2]);
    }

    #[test]
    fn matches_scratch_fixpoint_on_random_graphs() {
        let mut rng = gen::seeded_rng(101);
        for trial in 0..12 {
            let g = gen::gnp(40, 0.25, &mut rng);
            for k in 0..3usize {
                for lb in 0..9usize {
                    let mut c = Ctcp::new(&g, k);
                    c.tighten(lb);
                    let (expected, expected_keep) = scratch_fixpoint(&g, k, lb);
                    assert_eq!(
                        c.alive_vertices(),
                        expected_keep,
                        "trial {trial} k {k} lb {lb}"
                    );
                    let (adj, _) = c.extract_universe();
                    assert_eq!(
                        Graph::from_adjacency(adj),
                        expected,
                        "edges differ: trial {trial} k {k} lb {lb}"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_schedule_matches_one_shot() {
        let mut rng = gen::seeded_rng(202);
        for trial in 0..8 {
            let g = gen::gnp(50, 0.2, &mut rng);
            for k in 0..3usize {
                let mut warm = Ctcp::new(&g, k);
                for lb in [2usize, 4, 5, 7, 9] {
                    warm.tighten(lb);
                    assert_eq!(
                        warm.alive_vertices(),
                        ctcp_alive(&g, k, lb),
                        "trial {trial} k {k} lb {lb}"
                    );
                    assert_eq!(warm.alive_vertices().len(), warm.alive_n());
                }
            }
        }
    }

    #[test]
    fn lower_lb_is_clamped() {
        let mut rng = gen::seeded_rng(7);
        let g = gen::gnp(30, 0.3, &mut rng);
        let mut c = Ctcp::new(&g, 1);
        c.tighten(6);
        let alive = c.alive_vertices();
        assert!(c.tighten(3).is_empty(), "lower lb must be a no-op");
        assert_eq!(c.alive_vertices(), alive);
        assert_eq!(c.lb(), 6);
    }

    #[test]
    fn rules_toggle_independently() {
        let mut rng = gen::seeded_rng(55);
        let g = gen::gnp(35, 0.3, &mut rng);
        for (core, truss) in [(true, false), (false, true), (false, false)] {
            for lb in [3usize, 5, 7] {
                let mut c = Ctcp::with_rules(&g, 1, core, truss);
                c.tighten(lb);
                let (expected, expected_keep) = scratch_fixpoint_rules(&g, 1, lb, core, truss);
                assert_eq!(
                    c.alive_vertices(),
                    expected_keep,
                    "core={core} truss={truss}"
                );
                let (adj, _) = c.extract_universe();
                assert_eq!(
                    Graph::from_adjacency(adj),
                    expected,
                    "edges differ: core={core} truss={truss} lb={lb}"
                );
            }
        }
    }

    #[test]
    fn counters_and_extraction_agree() {
        let mut rng = gen::seeded_rng(9);
        let (g, _) = gen::planted_defective_clique(200, 12, 2, 0.03, &mut rng);
        let mut c = Ctcp::new(&g, 2);
        let rem = c.tighten(10);
        let (v_removed, e_removed) = c.removal_counters();
        assert_eq!(v_removed as usize, rem.vertices.len());
        assert_eq!(e_removed, rem.edges);
        assert_eq!(v_removed as usize + c.alive_n(), g.n());
        assert_eq!(e_removed as usize + c.alive_m(), g.m());

        let (adj, keep) = c.extract_universe();
        assert_eq!(keep.len(), c.alive_n());
        assert_eq!(adj.iter().map(Vec::len).sum::<usize>() / 2, c.alive_m());
        // The extracted universe is exactly the induced subgraph on the
        // surviving vertices *minus* truss-removed edges; cross-check
        // against alive_neighbors_into.
        let mut buf = Vec::new();
        for (i, &v) in keep.iter().enumerate() {
            buf.clear();
            c.alive_neighbors_into(v, &mut buf);
            let mapped: Vec<u32> = adj[i].iter().map(|&nw| keep[nw as usize]).collect();
            assert_eq!(buf, mapped, "row {i}");
        }
    }

    #[test]
    fn tighten_batch_matches_sequential_tighten() {
        let mut rng = gen::seeded_rng(303);
        for trial in 0..8 {
            let g = gen::gnp(45, 0.25, &mut rng);
            for k in 0..3usize {
                let schedule = [3usize, 5, 4, 8]; // deliberately non-monotone
                let mut sequential = Ctcp::new(&g, k);
                let mut total = Removals::default();
                for &lb in &schedule {
                    let rem = sequential.tighten(lb);
                    total.vertices.extend(rem.vertices);
                    total.edges += rem.edges;
                }
                let mut batched = Ctcp::new(&g, k);
                let rem = batched.tighten_batch(&schedule);
                assert_eq!(
                    batched.alive_vertices(),
                    sequential.alive_vertices(),
                    "trial {trial} k {k}"
                );
                assert_eq!(batched.lb(), sequential.lb());
                assert_eq!(rem.edges, total.edges, "trial {trial} k {k}");
                // The removed vertex *sets* agree (order may differ: one
                // drain visits the buckets in a different sequence).
                let mut a = rem.vertices.clone();
                let mut b = total.vertices.clone();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "trial {trial} k {k}");
                let (adj_a, _) = batched.extract_universe();
                let (adj_b, _) = sequential.extract_universe();
                assert_eq!(adj_a, adj_b, "universes differ: trial {trial} k {k}");
            }
        }
    }

    #[test]
    fn tighten_batch_accepts_unsorted_and_duplicate_schedules() {
        // The merged schedules a batch sweep hands over arrive in sub-query
        // completion order with repeated witness sizes; the reducer state
        // must be byte-identical to the canonical sorted + deduped call.
        let mut rng = gen::seeded_rng(304);
        for trial in 0..6 {
            let g = gen::gnp(40, 0.3, &mut rng);
            for k in 0..3usize {
                let messy = [5usize, 3, 5, 8, 3, 8, 4];
                let mut sorted: Vec<usize> = messy.to_vec();
                sorted.sort_unstable();
                sorted.dedup();

                let mut a = Ctcp::new(&g, k);
                let rem_a = a.tighten_batch(&messy);
                let mut b = Ctcp::new(&g, k);
                let rem_b = b.tighten_batch(&sorted);

                assert_eq!(a.lb(), b.lb(), "trial {trial} k {k}");
                assert_eq!(a.alive_vertices(), b.alive_vertices());
                assert_eq!(rem_a.edges, rem_b.edges, "trial {trial} k {k}");
                let mut va = rem_a.vertices.clone();
                let mut vb = rem_b.vertices.clone();
                va.sort_unstable();
                vb.sort_unstable();
                assert_eq!(va, vb, "trial {trial} k {k}");
                assert_eq!(
                    a.extract_universe(),
                    b.extract_universe(),
                    "trial {trial} k {k}"
                );
            }
        }
    }

    #[test]
    fn tighten_batch_edge_cases() {
        let g = gen::complete(5);
        let mut c = Ctcp::new(&g, 1);
        assert!(c.tighten_batch(&[]).is_empty(), "empty schedule is a no-op");
        assert_eq!(c.lb(), 0);
        c.tighten(6);
        // A batch entirely below the current bound is clamped away.
        assert!(c.tighten_batch(&[1, 2, 3]).is_empty());
        assert_eq!(c.lb(), 6);
    }

    #[test]
    fn everything_can_die() {
        let g = gen::complete(4);
        let mut c = Ctcp::new(&g, 0);
        let rem = c.tighten(10);
        assert_eq!(rem.vertices.len(), 4);
        assert_eq!(c.alive_n(), 0);
        assert_eq!(c.alive_m(), 0);
        let (adj, keep) = c.extract_universe();
        assert!(adj.is_empty() && keep.is_empty());
    }
}
