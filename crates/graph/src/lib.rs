#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # kdc-graph
//!
//! Graph substrate for the kDC suite (reproduction of *Efficient Maximum
//! k-Defective Clique Computation with Improved Time Complexity*, Chang,
//! SIGMOD 2023).
//!
//! This crate provides everything the solver sits on:
//!
//! * [`graph::Graph`] — immutable CSR graphs with `u32` ids;
//! * [`bitset`] — `u64`-word bitsets and bit-matrices for the dense search
//!   path;
//! * [`degeneracy`] — degeneracy orderings, core numbers and k-cores
//!   (Definitions 2.3–2.4), used by reduction rule RR5 and the Degen
//!   heuristics;
//! * [`truss`] — k-truss peeling (Definition 2.5), used by reduction rule
//!   RR6;
//! * [`ctcp`] — incremental core–truss co-pruning: maintained degrees and
//!   triangle supports let RR5 + RR6 re-tighten against a rising lower
//!   bound without recomputing either fixpoint from scratch;
//! * [`coloring`] — greedy colouring in reverse degeneracy order, used by
//!   upper bound UB1 and the Eq. (2) baseline bound;
//! * [`gen`] — deterministic synthetic workload generators standing in for
//!   the paper's three benchmark collections;
//! * [`io`] — edge-list and DIMACS readers/writers;
//! * [`named`] — the exact example graphs of the paper's figures;
//! * [`scratch`] — epoch-stamped scratch markers for O(1)-reset hot loops.

pub mod bitset;
pub mod coloring;
pub mod ctcp;
pub mod degeneracy;
pub mod gen;
pub mod graph;
pub mod io;
pub mod named;
pub mod scratch;
pub mod stats;
pub mod truss;

pub use bitset::{BitMatrix, BitSet};
pub use graph::{Graph, VertexId};
