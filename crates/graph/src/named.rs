//! Exact graphs from the paper's figures, used as ground truth by tests,
//! examples and the experiment harness.
//!
//! Vertex `v_i` of the paper maps to id `i − 1` here.

use crate::graph::{Graph, VertexId};

/// The running example of **Figure 2** (12 vertices, 26 edges).
///
/// Documented facts (Sections 2 and 2.1):
/// * `{v8..v12}` is a maximum clique (K5) and also a maximum 1-defective
///   clique;
/// * `{v1,v2,v3,v4,v6}` and `{v1,v2,v3,v5,v6}` are maximum 1-defective
///   cliques missing `(v2,v4)` and `(v1,v5)` respectively;
/// * `{v1..v6}` is a maximum 2-defective clique missing `(v2,v4)`, `(v1,v5)`;
/// * the degeneracy ordering is `(v7,v1,v2,v3,v4,v5,v6,v8,…,v12)`;
/// * the whole graph is a 3-core and a 3-truss; removing `v7` leaves a
///   4-core; removing `v7`'s edges leaves a 4-truss; `{v8..v12}` induces a
///   5-truss; `δ(G) = 4`.
pub fn figure2() -> Graph {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    // v1..v6 complete except (v2,v4) and (v1,v5).
    for a in 0..6u32 {
        for b in (a + 1)..6u32 {
            if (a, b) == (1, 3) || (a, b) == (0, 4) {
                continue;
            }
            edges.push((a, b));
        }
    }
    // v7 ~ {v1, v5, v6}.
    edges.extend_from_slice(&[(6, 0), (6, 4), (6, 5)]);
    // K5 on v8..v12.
    for a in 7..12u32 {
        for b in (a + 1)..12u32 {
            edges.push((a, b));
        }
    }
    Graph::from_edges(12, &edges)
}

/// The branching/reduction example of **Figure 4** (9 vertices).
///
/// Structure (reconstructed from Example 3.2 and §3.1.2):
/// * `v1` is adjacent to every other vertex;
/// * `g1 = {v2..v5}` induces a 4-cycle `v2–v3–v4–v5–v2` (missing `(v2,v4)`
///   and `(v3,v5)`);
/// * `g2 = {v6..v9}` induces two disjoint edges `(v6,v7)` and `(v8,v9)`;
/// * every vertex of `g1` is adjacent to every vertex of `g2` (the thick
///   edge of the figure).
///
/// With `k = 3`, RR2 greedily moves `v1..v5` into `S`; after branching on
/// `v6` and then `v8`, `S` misses three edges and RR1 removes `v7`, `v9`.
pub fn figure4() -> Graph {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for v in 1..9u32 {
        edges.push((0, v)); // v1 universal
    }
    edges.extend_from_slice(&[(1, 2), (2, 3), (3, 4), (4, 1)]); // g1 = C4
    edges.extend_from_slice(&[(5, 6), (7, 8)]); // g2 = 2×K2
    for a in 1..5u32 {
        for b in 5..9u32 {
            edges.push((a, b)); // complete g1–g2 join
        }
    }
    Graph::from_edges(9, &edges)
}

/// The upper-bound example of **Figure 5** (11 vertices, 27 edges) together
/// with the partial solution `S` (returned as vertex ids).
///
/// `S` consists of two isolated vertices (not even adjacent to each other),
/// and `V(g) \ S` is a complete 3-partite graph with parts `π1, π2, π3` of
/// three vertices each. With `k = 3`, the bound of Eq. (2) (MADEC) is 11
/// while UB1 yields 3 — and 3 is exactly the optimum of the instance
/// (Examples 3.6 and 3.7).
pub fn figure5() -> (Graph, Vec<VertexId>) {
    // ids: 0, 1 = S; parts π1 = {2,3,4}, π2 = {5,6,7}, π3 = {8,9,10}.
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let parts: [&[VertexId]; 3] = [&[2, 3, 4], &[5, 6, 7], &[8, 9, 10]];
    for i in 0..3 {
        for j in (i + 1)..3 {
            for &a in parts[i] {
                for &b in parts[j] {
                    edges.push((a, b));
                }
            }
        }
    }
    let g = Graph::from_edges(11, &edges);
    debug_assert_eq!(g.m(), 27);
    (g, vec![0, 1])
}

/// A **Figure 6-like** initial-solution example (7 vertices) with the
/// properties exercised by Example 3.8:
///
/// * the degeneracy ordering starts at `v1`, whose higher-ranked neighbours
///   are `N⁺(v1) = {v2, v3, v4}`;
/// * for `k = 1`, `Degen` (longest k-defective suffix of the degeneracy
///   ordering) finds a solution of size 3;
/// * `Degen-opt` finds `{v1, v2, v3, v4}` of size 4 (which is optimal), via
///   the ego-subgraph of `v1`.
///
/// The original figure is not fully specified in the text, so this graph is a
/// faithful reconstruction of the *behaviour*, not of the exact drawing.
pub fn figure6_like() -> Graph {
    Graph::from_edges(
        7,
        &[
            // near-clique {v1..v4}: complete minus (v3,v4)
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            // triangle {v5,v6,v7}
            (4, 5),
            (4, 6),
            (5, 6),
            // pendant structure tying the parts together
            (1, 4),
            (2, 5),
            (3, 6),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degeneracy;

    #[test]
    fn figure2_shape() {
        let g = figure2();
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 26);
        // max 2-defective clique {v1..v6} misses exactly the two stated edges
        assert_eq!(g.missing_edges_within(&[0, 1, 2, 3, 4, 5]), 2);
        assert!(!g.has_edge(1, 3) && !g.has_edge(0, 4));
        // K5 is complete
        assert_eq!(g.missing_edges_within(&[7, 8, 9, 10, 11]), 0);
        // 1-defective witnesses from the paper
        assert_eq!(g.missing_edges_within(&[0, 1, 2, 3, 5]), 1);
        assert_eq!(g.missing_edges_within(&[0, 1, 2, 4, 5]), 1);
    }

    #[test]
    fn figure2_degeneracy_ordering_matches_paper() {
        let g = figure2();
        let p = degeneracy::peel(&g);
        let expected: Vec<u32> = vec![6, 0, 1, 2, 3, 4, 5, 7, 8, 9, 10, 11];
        assert_eq!(p.order, expected, "(v7,v1,v2,v3,v4,v5,v6,v8..v12)");
        assert_eq!(p.degeneracy, 4);
    }

    #[test]
    fn figure4_shape() {
        let g = figure4();
        assert_eq!(g.n(), 9);
        // v1 universal
        assert_eq!(g.degree(0), 8);
        // g1 vertices: v1 + 2 cycle nbrs + 4 of g2 = 7 = n − 2
        for v in 1..5 {
            assert_eq!(g.degree(v), 7);
        }
        // g2 vertices: v1 + 1 partner + 4 of g1 = 6 = n − 3
        for v in 5..9 {
            assert_eq!(g.degree(v), 6);
        }
    }

    #[test]
    fn figure5_shape() {
        let (g, s) = figure5();
        assert_eq!(g.n(), 11);
        assert_eq!(g.m(), 27);
        assert_eq!(g.degree(s[0]), 0);
        assert_eq!(g.degree(s[1]), 0);
        // every non-S vertex has 6 neighbours (two opposite parts)
        for v in 2..11 {
            assert_eq!(g.degree(v), 6);
        }
    }

    #[test]
    fn figure6_like_shape() {
        let g = figure6_like();
        let p = degeneracy::peel(&g);
        assert_eq!(p.order[0], 0, "v1 peels first");
        // N⁺(v1) = all of N(v1) since v1 is first
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        // {v1..v4} misses exactly one edge → 1-defective of size 4
        assert_eq!(g.missing_edges_within(&[0, 1, 2, 3]), 1);
    }
}
