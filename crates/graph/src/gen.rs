//! Synthetic workload generators.
//!
//! The paper evaluates on three collections of real graphs that are not
//! redistributable here; these generators produce the synthetic stand-ins
//! described in DESIGN.md §3. All generators are deterministic given the
//! caller-supplied RNG.

use crate::graph::{Graph, VertexId};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges)
}

/// The complete multipartite graph with the given part sizes (all edges
/// between different parts, none inside a part). `complete_multipartite(&[a,
/// b])` is the complete bipartite graph `K_{a,b}`.
pub fn complete_multipartite(parts: &[usize]) -> Graph {
    let n: usize = parts.iter().sum();
    let mut part_of = Vec::with_capacity(n);
    for (i, &p) in parts.iter().enumerate() {
        part_of.extend(std::iter::repeat_n(i, p));
    }
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if part_of[u] != part_of[v] {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Erdős–Rényi `G(n, p)` via geometric skipping (O(n + m) expected).
pub fn gnp(n: usize, p: f64, rng: &mut SmallRng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if p <= 0.0 || n < 2 {
        return Graph::empty(n);
    }
    let mut edges = Vec::new();
    if p >= 1.0 {
        return complete(n);
    }
    // Iterate over the C(n,2) potential edges in lexicographic order,
    // skipping ahead geometrically.
    let total = n * (n - 1) / 2;
    let log_q = (1.0 - p).ln();
    let mut idx: usize = 0;
    loop {
        let r: f64 = rng.random::<f64>();
        let skip = ((1.0 - r).ln() / log_q).floor() as usize;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= total {
            break;
        }
        edges.push(unrank_edge(n, idx));
        idx += 1;
    }
    Graph::from_edges(n, &edges)
}

/// Maps a linear index in `[0, C(n,2))` to the corresponding `(u, v)` pair in
/// lexicographic order.
fn unrank_edge(n: usize, idx: usize) -> (VertexId, VertexId) {
    // Row u starts at offset u*n - u*(u+3)/2 ... solve incrementally; binary
    // search over rows keeps this O(log n).
    let row_start = |u: usize| u * (2 * n - u - 1) / 2;
    let (mut lo, mut hi) = (0usize, n - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if row_start(mid) <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let v = u + 1 + (idx - row_start(u));
    (u as VertexId, v as VertexId)
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m0 = m_attach` vertices and attaches each new vertex to `m_attach`
/// distinct existing vertices chosen preferentially by degree.
pub fn barabasi_albert(n: usize, m_attach: usize, rng: &mut SmallRng) -> Graph {
    assert!(m_attach >= 1 && n > m_attach, "need n > m_attach ≥ 1");
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    // Repeated-endpoint pool: choosing uniformly from it is preferential.
    let mut pool: Vec<VertexId> = Vec::new();
    for u in 0..m_attach as VertexId {
        for v in (u + 1)..m_attach as VertexId {
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    if m_attach == 1 {
        pool.push(0);
    }
    let mut chosen = Vec::with_capacity(m_attach);
    for v in m_attach..n {
        chosen.clear();
        let mut guard = 0;
        while chosen.len() < m_attach && guard < 50 * m_attach {
            let t = pool[rng.random_range(0..pool.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        // Fallback for degenerate pools: fill with smallest unused ids.
        let mut next = 0 as VertexId;
        while chosen.len() < m_attach {
            if !chosen.contains(&next) && (next as usize) < v {
                chosen.push(next);
            }
            next += 1;
        }
        for &t in &chosen {
            edges.push((v as VertexId, t));
            pool.push(v as VertexId);
            pool.push(t);
        }
    }
    Graph::from_edges(n, &edges)
}

/// Chung–Lu power-law random graph: vertex `i` gets weight
/// `w_i ∝ (i + i0)^(−1/(β−1))`, scaled to the target average degree, and each
/// edge `(u,v)` appears with probability `min(1, w_u·w_v / Σw)`.
pub fn chung_lu(n: usize, avg_deg: f64, beta: f64, rng: &mut SmallRng) -> Graph {
    assert!(beta > 2.0, "power-law exponent must exceed 2");
    if n < 2 {
        return Graph::empty(n);
    }
    let gamma = 1.0 / (beta - 1.0);
    let i0 = 1.0;
    let raw: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-gamma)).collect();
    let raw_sum: f64 = raw.iter().sum();
    let scale = avg_deg * n as f64 / raw_sum;
    let w: Vec<f64> = raw.iter().map(|r| r * scale).collect();
    let wsum: f64 = w.iter().sum();
    // High-weight vertices come first; sample per pair with early row exit
    // once the row's maximum pair probability collapses.
    let mut edges = Vec::new();
    for u in 0..n {
        // For fixed u, p(u,v) decreases in v; skip-sample like G(n,p) rows
        // with p bounded by p(u, u+1).
        let mut v = u + 1;
        while v < n {
            let p = (w[u] * w[v] / wsum).min(1.0);
            if p <= 0.0 {
                break;
            }
            if p >= 1.0 {
                edges.push((u as VertexId, v as VertexId));
                v += 1;
                continue;
            }
            if rng.random::<f64>() < p {
                edges.push((u as VertexId, v as VertexId));
            }
            v += 1;
        }
    }
    Graph::from_edges(n, &edges)
}

/// Plants a k-defective clique of `size` vertices (a clique with
/// `missing_edges` random internal edges deleted) inside a `G(n, p_noise)`
/// background. Returns the graph and the planted vertex set.
pub fn planted_defective_clique(
    n: usize,
    size: usize,
    missing_edges: usize,
    p_noise: f64,
    rng: &mut SmallRng,
) -> (Graph, Vec<VertexId>) {
    assert!(size <= n);
    assert!(missing_edges <= size * size.saturating_sub(1) / 2);
    let background = gnp(n, p_noise, rng);
    // Choose the planted set as a random sample of vertices.
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    for i in 0..size {
        let j = rng.random_range(i..n);
        ids.swap(i, j);
    }
    let planted: Vec<VertexId> = ids[..size].to_vec();

    // All clique pair slots, minus a random sample of `missing_edges`.
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(size * (size - 1) / 2);
    for i in 0..size {
        for j in (i + 1)..size {
            let (a, b) = (planted[i].min(planted[j]), planted[i].max(planted[j]));
            pairs.push((a, b));
        }
    }
    for i in 0..missing_edges {
        let j = rng.random_range(i..pairs.len());
        pairs.swap(i, j);
    }
    let keep = &pairs[missing_edges..];

    let mut edges: Vec<(VertexId, VertexId)> = background.edges().collect();
    // Remove background edges inside the planted set, then add the kept pairs.
    let in_planted: std::collections::HashSet<VertexId> = planted.iter().copied().collect();
    edges.retain(|&(u, v)| !(in_planted.contains(&u) && in_planted.contains(&v)));
    edges.extend_from_slice(keep);
    (Graph::from_edges(n, &edges), planted)
}

/// Parameters for [`community`] graphs.
#[derive(Clone, Debug)]
pub struct CommunityParams {
    /// Number of communities.
    pub communities: usize,
    /// Vertices per community.
    pub community_size: usize,
    /// Intra-community edge probability (dense).
    pub p_in: f64,
    /// Inter-community edge probability (sparse).
    pub p_out: f64,
}

/// A planted-partition ("facebook-like") graph: `communities` dense blocks
/// with sparse random edges between blocks. Social networks' large
/// near-cliques live inside such blocks, which is the regime where the
/// paper's UB1/RR3/RR4 shine.
pub fn community(params: &CommunityParams, rng: &mut SmallRng) -> Graph {
    let n = params.communities * params.community_size;
    let block = |v: usize| v / params.community_size;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block(u) == block(v) {
                params.p_in
            } else {
                params.p_out
            };
            if p > 0.0 && rng.random::<f64>() < p {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// A `rows × cols` lattice. With `diagonals`, each cell also connects to its
/// down-right and down-left neighbours (king-move style), which creates
/// triangles and 4-cliques like DIMACS10 mesh instances.
pub fn grid(rows: usize, cols: usize, diagonals: bool) -> Graph {
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
                if diagonals {
                    if c + 1 < cols {
                        edges.push((id(r, c), id(r + 1, c + 1)));
                    }
                    if c > 0 {
                        edges.push((id(r, c), id(r + 1, c - 1)));
                    }
                }
            }
        }
    }
    Graph::from_edges(rows * cols, &edges)
}

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs within distance `radius`. Grid-bucketed, O(n + m) expected.
/// Models road-network/mesh-like DIMACS10 instances.
pub fn random_geometric(n: usize, radius: f64, rng: &mut SmallRng) -> Graph {
    assert!(radius > 0.0);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let cells = (1.0 / radius).floor().max(1.0) as usize;
    let cell_of = |p: (f64, f64)| {
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
        (cx, cy)
    };
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cells + cx].push(i as u32);
    }
    let r2 = radius * radius;
    let mut edges = Vec::new();
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                for &j in &buckets[ny as usize * cells + nx as usize] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let q = pts[j as usize];
                    let (ddx, ddy) = (p.0 - q.0, p.1 - q.1);
                    if ddx * ddx + ddy * ddy <= r2 {
                        edges.push((i as VertexId, j));
                    }
                }
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// A heterogeneous planted-partition graph: like [`community`], but
/// community `c` gets size `community_size · (3 + (c mod 3))/4` and
/// intra-density `p_in · (0.7 + 0.6·c/(communities−1))` (capped at 0.9).
/// One community is clearly densest — as in real social networks, where
/// preprocessing can then discard the rest. Returns the graph and the
/// per-vertex community labels.
pub fn community_heterogeneous(params: &CommunityParams, rng: &mut SmallRng) -> (Graph, Vec<u32>) {
    let c = params.communities;
    assert!(c >= 1);
    let mut label: Vec<u32> = Vec::new();
    let mut p_in_of: Vec<f64> = Vec::new();
    for i in 0..c {
        let size = params.community_size * (3 + (i % 3)) / 4; // 0.75×, 1×, 1.25×
        let boost = if c == 1 {
            1.0
        } else {
            0.7 + 0.6 * i as f64 / (c - 1) as f64
        };
        p_in_of.push((params.p_in * boost).min(0.9));
        label.extend(std::iter::repeat_n(i as u32, size));
    }
    let n = label.len();
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if label[u] == label[v] {
                p_in_of[label[u] as usize]
            } else {
                params.p_out
            };
            if p > 0.0 && rng.random::<f64>() < p {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    (Graph::from_edges(n, &edges), label)
}

/// Watts–Strogatz small-world graph: a ring lattice where every vertex links
/// to its `k_ring / 2` nearest neighbours on each side, with each edge
/// endpoint rewired uniformly at random with probability `p_rewire`.
/// High clustering with short paths — another social-like regime.
pub fn watts_strogatz(n: usize, k_ring: usize, p_rewire: f64, rng: &mut SmallRng) -> Graph {
    assert!(
        k_ring >= 2 && k_ring.is_multiple_of(2),
        "k_ring must be even and ≥ 2"
    );
    assert!(n > k_ring, "need n > k_ring");
    let half = k_ring / 2;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for u in 0..n {
        for d in 1..=half {
            let v = (u + d) % n;
            if rng.random::<f64>() < p_rewire {
                // Rewire to a uniform non-self target; duplicates are merged
                // by the Graph constructor (slight edge-count shrink, as in
                // the standard model).
                let mut t = rng.random_range(0..n);
                let mut guard = 0;
                while t == u && guard < 8 {
                    t = rng.random_range(0..n);
                    guard += 1;
                }
                if t != u {
                    edges.push((u as VertexId, t as VertexId));
                }
            } else {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Stochastic-Kronecker-style (R-MAT) graph on `2^scale` vertices with
/// `edge_factor × 2^scale` sampled edges and the classic (a, b, c, d)
/// quadrant probabilities. Models SNAP-style web/social graphs with
/// heavy-tailed degrees and community-of-communities structure.
pub fn rmat(scale: u32, edge_factor: usize, rng: &mut SmallRng) -> Graph {
    let n = 1usize << scale;
    let target = edge_factor * n;
    let (a, b, c) = (0.57, 0.19, 0.19); // d = 0.05, Graph500 defaults
    let mut edges = Vec::with_capacity(target);
    for _ in 0..target {
        let (mut u, mut v) = (0usize, 0usize);
        for bit in (0..scale).rev() {
            let r: f64 = rng.random();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        if u != v {
            edges.push((u as VertexId, v as VertexId));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Convenience: a seeded RNG for deterministic workloads.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 15);
        assert!(g.is_k_defective_clique(&[0, 1, 2, 3, 4, 5], 0));
    }

    #[test]
    fn multipartite_counts() {
        let g = complete_multipartite(&[2, 3]);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 6);
        assert!(!g.has_edge(0, 1), "no intra-part edges");
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = seeded_rng(1);
        assert_eq!(gnp(10, 0.0, &mut rng).m(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).m(), 45);
        assert_eq!(gnp(1, 0.5, &mut rng).n(), 1);
    }

    #[test]
    fn gnp_density_close_to_p() {
        let mut rng = seeded_rng(2);
        let g = gnp(400, 0.1, &mut rng);
        let density = g.density();
        assert!(
            (density - 0.1).abs() < 0.02,
            "density {density} too far from p = 0.1"
        );
    }

    #[test]
    fn unrank_edge_is_lexicographic() {
        let n = 7;
        let mut seen = Vec::new();
        for idx in 0..(n * (n - 1) / 2) {
            seen.push(unrank_edge(n, idx));
        }
        let mut expected = Vec::new();
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                expected.push((u, v));
            }
        }
        assert_eq!(seen, expected);
    }

    #[test]
    fn ba_graph_connected_with_expected_edges() {
        let mut rng = seeded_rng(3);
        let g = barabasi_albert(200, 3, &mut rng);
        assert_eq!(g.n(), 200);
        assert!(g.is_connected());
        // clique(3) + 197 × 3 attachments (dedup may drop a few)
        assert!(g.m() >= 3 + 197 * 3 - 10);
    }

    #[test]
    fn chung_lu_has_skewed_degrees() {
        let mut rng = seeded_rng(4);
        let g = chung_lu(500, 8.0, 2.5, &mut rng);
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(avg > 2.0 && avg < 20.0, "avg degree {avg}");
        assert!(
            g.max_degree() as f64 > 3.0 * avg,
            "power-law should create hubs (max {} vs avg {avg})",
            g.max_degree()
        );
    }

    #[test]
    fn planted_clique_is_defective() {
        let mut rng = seeded_rng(5);
        let (g, planted) = planted_defective_clique(100, 12, 3, 0.05, &mut rng);
        assert_eq!(planted.len(), 12);
        assert_eq!(g.missing_edges_within(&planted), 3);
        assert!(g.is_k_defective_clique(&planted, 3));
        assert!(!g.is_k_defective_clique(&planted, 2));
    }

    #[test]
    fn planted_zero_missing_is_clique() {
        let mut rng = seeded_rng(6);
        let (g, planted) = planted_defective_clique(50, 8, 0, 0.1, &mut rng);
        assert_eq!(g.missing_edges_within(&planted), 0);
    }

    #[test]
    fn community_blocks_denser_than_background() {
        let mut rng = seeded_rng(7);
        let params = CommunityParams {
            communities: 4,
            community_size: 25,
            p_in: 0.6,
            p_out: 0.02,
        };
        let g = community(&params, &mut rng);
        assert_eq!(g.n(), 100);
        let block0: Vec<VertexId> = (0..25).collect();
        let within = g.edges_within(&block0) as f64 / 300.0;
        assert!(within > 0.4, "intra-block density {within}");
    }

    #[test]
    fn heterogeneous_communities_vary_in_density() {
        let mut rng = seeded_rng(60);
        let params = CommunityParams {
            communities: 4,
            community_size: 40,
            p_in: 0.5,
            p_out: 0.01,
        };
        let (g, label) = community_heterogeneous(&params, &mut rng);
        assert_eq!(g.n(), label.len());
        // Density of the last community strictly exceeds the first's.
        let members = |c: u32| -> Vec<VertexId> {
            label
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == c)
                .map(|(i, _)| i as VertexId)
                .collect()
        };
        let dens =
            |vs: &[VertexId]| g.edges_within(vs) as f64 / (vs.len() * (vs.len() - 1) / 2) as f64;
        let first = members(0);
        let last = members(3);
        assert!(
            dens(&last) > dens(&first) + 0.1,
            "{} vs {}",
            dens(&last),
            dens(&first)
        );
        // Sizes follow the 0.75×/1.25× pattern.
        assert_eq!(first.len(), 30);
        assert_eq!(members(1).len(), 40);
    }

    #[test]
    fn watts_strogatz_ring_without_rewiring() {
        let mut rng = seeded_rng(50);
        let g = watts_strogatz(20, 4, 0.0, &mut rng);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 40, "each vertex links 2 ahead");
        // Ring lattice: neighbours at distance 1 and 2.
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(0, 19) && g.has_edge(0, 18));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn watts_strogatz_rewiring_keeps_graph_simple() {
        let mut rng = seeded_rng(51);
        let g = watts_strogatz(100, 6, 0.3, &mut rng);
        assert_eq!(g.n(), 100);
        assert!(g.m() <= 300, "rewiring can only merge edges");
        assert!(g.m() > 250);
    }

    #[test]
    fn rmat_has_heavy_tail() {
        let mut rng = seeded_rng(52);
        let g = rmat(10, 8, &mut rng);
        assert_eq!(g.n(), 1024);
        assert!(g.m() > 4_000);
        let avg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(
            g.max_degree() as f64 > 5.0 * avg,
            "R-MAT should produce hubs: max {} vs avg {avg:.1}",
            g.max_degree()
        );
    }

    #[test]
    fn grid_shapes() {
        let g = grid(3, 4, false);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.triangle_count(), 0, "plain lattice is triangle-free");

        let d = grid(3, 3, true);
        assert!(d.triangle_count() > 0, "diagonals create triangles");
        assert!(d.has_edge(0, 4), "down-right diagonal");
        assert!(d.has_edge(1, 3), "down-left diagonal");
    }

    #[test]
    fn geometric_graph_is_local() {
        let mut rng = seeded_rng(77);
        let g = random_geometric(400, 0.08, &mut rng);
        assert_eq!(g.n(), 400);
        assert!(g.m() > 100, "radius should produce edges, got {}", g.m());
        // Bucketed construction must agree with the brute-force definition.
        let mut rng2 = seeded_rng(77);
        let pts: Vec<(f64, f64)> = (0..400)
            .map(|_| (rng2.random::<f64>(), rng2.random::<f64>()))
            .collect();
        let mut expected = 0usize;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                if dx * dx + dy * dy <= 0.08 * 0.08 {
                    expected += 1;
                }
            }
        }
        assert_eq!(g.m(), expected);
    }

    #[test]
    fn generators_are_deterministic() {
        let g1 = gnp(50, 0.2, &mut seeded_rng(42));
        let g2 = gnp(50, 0.2, &mut seeded_rng(42));
        assert_eq!(g1, g2);
        let b1 = barabasi_albert(60, 2, &mut seeded_rng(42));
        let b2 = barabasi_albert(60, 2, &mut seeded_rng(42));
        assert_eq!(b1, b2);
    }
}
