//! Graph file formats: whitespace edge lists and DIMACS `.clq`.
//!
//! Both readers are forgiving about comments and blank lines and accept 0- or
//! 1-based vertex ids (DIMACS is 1-based by specification; edge lists are
//! auto-detected via an explicit flag).

use crate::graph::{Graph, VertexId};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::str::FromStr;

/// Errors produced by the parsers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Malformed content with a line number and message.
    Parse {
        /// 1-based line of the offending record (0 when file-level).
        line: usize,
        /// Human-readable description of the problem.
        msg: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_token<T: FromStr>(tok: &str, line: usize) -> Result<T, IoError> {
    tok.parse().map_err(|_| IoError::Parse {
        line,
        msg: format!("invalid number {tok:?}"),
    })
}

/// Parses a whitespace-separated edge list. Lines starting with `#`, `%` or
/// `c` are comments. Vertex ids may be arbitrary non-negative integers; the
/// graph is sized by the maximum id (+1). If `one_based`, ids are shifted
/// down by one.
pub fn parse_edge_list(text: &str, one_based: bool) -> Result<Graph, IoError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(['#', '%']) || line.starts_with("c ") {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(IoError::Parse {
                line: lineno + 1,
                msg: "expected two vertex ids".into(),
            });
        };
        let mut u: u64 = parse_token(a, lineno + 1)?;
        let mut v: u64 = parse_token(b, lineno + 1)?;
        if one_based {
            if u == 0 || v == 0 {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    msg: "vertex id 0 in a 1-based edge list".into(),
                });
            }
            u -= 1;
            v -= 1;
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as VertexId, v as VertexId));
    }
    let n = if edges.is_empty() {
        0
    } else {
        (max_id + 1) as usize
    };
    Ok(Graph::from_edges(n, &edges))
}

/// Parses a DIMACS `.clq`/`.col` graph: `c` comment lines, one
/// `p edge <n> <m>` header, and `e <u> <v>` edge lines with 1-based ids.
pub fn parse_dimacs(text: &str) -> Result<Graph, IoError> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("p") => {
                let _fmt = it.next(); // "edge" / "col"
                let nv: usize = parse_token(
                    it.next().ok_or(IoError::Parse {
                        line: lineno + 1,
                        msg: "missing vertex count".into(),
                    })?,
                    lineno + 1,
                )?;
                n = Some(nv);
            }
            Some("e") => {
                let u: usize = parse_token(
                    it.next().ok_or(IoError::Parse {
                        line: lineno + 1,
                        msg: "missing endpoint".into(),
                    })?,
                    lineno + 1,
                )?;
                let v: usize = parse_token(
                    it.next().ok_or(IoError::Parse {
                        line: lineno + 1,
                        msg: "missing endpoint".into(),
                    })?,
                    lineno + 1,
                )?;
                if u == 0 || v == 0 {
                    return Err(IoError::Parse {
                        line: lineno + 1,
                        msg: "DIMACS ids are 1-based".into(),
                    });
                }
                edges.push(((u - 1) as VertexId, (v - 1) as VertexId));
            }
            Some(other) => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    msg: format!("unknown record {other:?}"),
                })
            }
            None => {}
        }
    }
    let n = n.ok_or(IoError::Parse {
        line: 0,
        msg: "missing `p edge` header".into(),
    })?;
    if let Some(&(u, v)) = edges
        .iter()
        .find(|&&(u, v)| u as usize >= n || v as usize >= n)
    {
        return Err(IoError::Parse {
            line: 0,
            msg: format!("edge ({}, {}) exceeds declared n = {n}", u + 1, v + 1),
        });
    }
    Ok(Graph::from_edges(n, &edges))
}

/// Parses a METIS graph file (the DIMACS10 distribution format): a header
/// `<n> <m> [fmt]` followed by one line per vertex listing its (1-based)
/// neighbours. Only unweighted graphs (`fmt` 0 or absent) are supported.
pub fn parse_metis(text: &str) -> Result<Graph, IoError> {
    // Comment lines ('%') are skipped, but *empty* lines after the header
    // are meaningful: they are the adjacency rows of isolated vertices.
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim_start().starts_with('%'));
    let (header_no, header) =
        lines
            .by_ref()
            .find(|(_, l)| !l.trim().is_empty())
            .ok_or(IoError::Parse {
                line: 0,
                msg: "empty METIS file".into(),
            })?;
    let mut it = header.split_whitespace();
    let n: usize = parse_token(
        it.next().ok_or(IoError::Parse {
            line: header_no + 1,
            msg: "missing vertex count".into(),
        })?,
        header_no + 1,
    )?;
    let declared_m: usize = parse_token(
        it.next().ok_or(IoError::Parse {
            line: header_no + 1,
            msg: "missing edge count".into(),
        })?,
        header_no + 1,
    )?;
    if let Some(fmt) = it.next() {
        if fmt != "0" && fmt != "00" && fmt != "000" {
            return Err(IoError::Parse {
                line: header_no + 1,
                msg: format!("unsupported METIS fmt {fmt:?} (weights not supported)"),
            });
        }
    }
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut row = 0usize;
    for (lineno, line) in lines {
        if row >= n {
            if line.trim().is_empty() {
                continue; // trailing blank lines are tolerated
            }
            return Err(IoError::Parse {
                line: lineno + 1,
                msg: "more adjacency rows than declared vertices".into(),
            });
        }
        for tok in line.split_whitespace() {
            let v: usize = parse_token(tok, lineno + 1)?;
            if v == 0 || v > n {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    msg: format!("neighbour id {v} out of range 1..={n}"),
                });
            }
            adj[row].push((v - 1) as VertexId);
        }
        row += 1;
    }
    if row != n {
        return Err(IoError::Parse {
            line: 0,
            msg: format!("expected {n} adjacency rows, found {row}"),
        });
    }
    // Symmetrise defensively (well-formed files list both directions).
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (u, list) in adj.iter().enumerate() {
        for &v in list {
            edges.push((u as VertexId, v));
        }
    }
    let g = Graph::from_edges(n, &edges);
    if g.m() != declared_m {
        return Err(IoError::Parse {
            line: header_no + 1,
            msg: format!("header declares {declared_m} edges, file has {}", g.m()),
        });
    }
    Ok(g)
}

/// Serialises a graph in METIS format.
pub fn write_metis(g: &Graph, path: &Path) -> Result<(), IoError> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "{} {}", g.n(), g.m())?;
    for v in g.vertices() {
        let row: Vec<String> = g.neighbors(v).iter().map(|w| (w + 1).to_string()).collect();
        writeln!(f, "{}", row.join(" "))?;
    }
    Ok(())
}

/// Reads a graph file, dispatching on extension: `.clq`/`.col`/`.dimacs` →
/// DIMACS, `.graph`/`.metis` → METIS, everything else → 0-based edge list.
pub fn read_graph(path: &Path) -> Result<Graph, IoError> {
    let text = fs::read_to_string(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("clq") | Some("col") | Some("dimacs") => parse_dimacs(&text),
        Some("graph") | Some("metis") => parse_metis(&text),
        _ => parse_edge_list(&text, false),
    }
}

/// Serialises a graph as a 0-based edge list with a `#` header.
pub fn write_edge_list(g: &Graph, path: &Path) -> Result<(), IoError> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "# n = {} m = {}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(f, "{u} {v}")?;
    }
    Ok(())
}

/// Serialises a graph in DIMACS `.clq` format (1-based).
pub fn write_dimacs(g: &Graph, path: &Path) -> Result<(), IoError> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "c generated by kdc-suite")?;
    writeln!(f, "p edge {} {}", g.n(), g.m())?;
    for (u, v) in g.edges() {
        writeln!(f, "e {} {}", u + 1, v + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip() {
        let text = "# comment\n0 1\n1 2\n\n% another comment\n2 3\n";
        let g = parse_edge_list(text, false).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn edge_list_one_based() {
        let g = parse_edge_list("1 2\n2 3\n", true).unwrap();
        assert_eq!(g.n(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
    }

    #[test]
    fn edge_list_rejects_zero_in_one_based() {
        assert!(parse_edge_list("0 1\n", true).is_err());
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let err = parse_edge_list("0 x\n", false).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn dimacs_roundtrip() {
        let text = "c sample\np edge 4 3\ne 1 2\ne 2 3\ne 3 4\n";
        let g = parse_dimacs(text).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn dimacs_requires_header() {
        assert!(parse_dimacs("e 1 2\n").is_err());
    }

    #[test]
    fn dimacs_bounds_check() {
        assert!(parse_dimacs("p edge 2 1\ne 1 5\n").is_err());
    }

    #[test]
    fn metis_parse_basic() {
        // A triangle plus a pendant vertex.
        let text = "% comment\n4 4\n2 3\n1 3 4\n1 2\n2\n";
        let g = parse_metis(text).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 3) && !g.has_edge(0, 3));
    }

    #[test]
    fn metis_rejects_malformed() {
        assert!(parse_metis("").is_err(), "empty file");
        assert!(parse_metis("2 1\n2\n1\n1\n").is_err(), "extra rows");
        assert!(parse_metis("2 1\n2\n").is_err(), "missing rows");
        assert!(
            parse_metis("2 1\n3\n1\n").is_err(),
            "neighbour out of range"
        );
        assert!(parse_metis("2 1\n0\n1\n").is_err(), "neighbour id 0");
        assert!(parse_metis("2 5\n2\n1\n").is_err(), "edge count mismatch");
        assert!(parse_metis("2 1 011\n2\n1\n").is_err(), "weighted fmt");
    }

    #[test]
    fn metis_isolated_vertices_are_empty_rows() {
        // Vertices 2 and 4 are isolated: their rows are empty lines.
        let g = parse_metis("4 1\n3\n\n1\n\n").unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 1);
        assert!(g.has_edge(0, 2));
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.degree(3), 0);
        // Trailing blank lines are tolerated.
        assert!(parse_metis("2 1\n2\n1\n\n\n").is_ok());
    }

    #[test]
    fn metis_file_roundtrip() {
        let dir = std::env::temp_dir().join("kdc_io_tests");
        fs::create_dir_all(&dir).unwrap();
        let g = crate::gen::gnp(30, 0.2, &mut crate::gen::seeded_rng(5));
        let p = dir.join("g.graph");
        write_metis(&g, &p).unwrap();
        assert_eq!(read_graph(&p).unwrap(), g);
    }

    #[test]
    fn file_roundtrips() {
        let dir = std::env::temp_dir().join("kdc_io_tests");
        fs::create_dir_all(&dir).unwrap();
        let g = crate::gen::complete(5);

        let p1 = dir.join("k5.txt");
        write_edge_list(&g, &p1).unwrap();
        assert_eq!(read_graph(&p1).unwrap(), g);

        let p2 = dir.join("k5.clq");
        write_dimacs(&g, &p2).unwrap();
        assert_eq!(read_graph(&p2).unwrap(), g);
    }
}
