//! Epoch-stamped scratch markers.
//!
//! Branch-and-bound inner loops repeatedly need a transient "is `v` marked?"
//! predicate over the vertex universe. Clearing a boolean array each time
//! would cost O(n); an epoch counter makes reset O(1).

/// A reusable marker over `[0, n)` with O(1) reset.
#[derive(Clone, Debug)]
pub struct Marker {
    stamp: Vec<u32>,
    epoch: u32,
}

impl Marker {
    /// Creates a marker for values in `[0, n)`; all values start unmarked.
    pub fn new(n: usize) -> Self {
        Marker {
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    /// Unmarks every value in O(1) (amortised; a full clear happens only on
    /// epoch wrap-around, once every `u32::MAX` resets).
    pub fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `v`.
    #[inline]
    pub fn mark(&mut self, v: usize) {
        self.stamp[v] = self.epoch;
    }

    /// Unmarks `v` individually.
    #[inline]
    pub fn unmark(&mut self, v: usize) {
        self.stamp[v] = self.epoch.wrapping_sub(1);
    }

    /// Tests whether `v` is marked in the current epoch.
    #[inline]
    pub fn is_marked(&self, v: usize) -> bool {
        self.stamp[v] == self.epoch
    }

    /// Grows the marker to cover `[0, n)` (no-op when already large enough).
    /// New slots start unmarked; existing marks are preserved.
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
    }

    /// Capacity of the marker.
    #[inline]
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Whether the marker has zero capacity.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }
}

/// A reusable `usize`-valued scratch map over `[0, n)` with O(1) reset;
/// reading an unset slot returns the provided default.
#[derive(Clone, Debug)]
pub struct ScratchMap {
    value: Vec<usize>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl ScratchMap {
    /// Creates a map for keys in `[0, n)`.
    pub fn new(n: usize) -> Self {
        ScratchMap {
            value: vec![0; n],
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    /// Clears the map in O(1) (amortised).
    pub fn reset(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Sets `k → v`.
    #[inline]
    pub fn set(&mut self, k: usize, v: usize) {
        self.value[k] = v;
        self.stamp[k] = self.epoch;
    }

    /// Gets the value for `k`, or `default` if unset this epoch.
    #[inline]
    pub fn get_or(&self, k: usize, default: usize) -> usize {
        if self.stamp[k] == self.epoch {
            self.value[k]
        } else {
            default
        }
    }

    /// Adds `delta` to `k`'s value (starting from 0 if unset); returns the
    /// new value.
    #[inline]
    pub fn add(&mut self, k: usize, delta: usize) -> usize {
        let cur = self.get_or(k, 0);
        self.set(k, cur + delta);
        cur + delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_basic() {
        let mut m = Marker::new(10);
        assert!(!m.is_marked(3));
        m.mark(3);
        m.mark(9);
        assert!(m.is_marked(3) && m.is_marked(9));
        m.unmark(3);
        assert!(!m.is_marked(3) && m.is_marked(9));
        m.reset();
        assert!(!m.is_marked(9));
    }

    #[test]
    fn marker_many_resets_stay_consistent() {
        let mut m = Marker::new(4);
        for round in 0..1000 {
            m.mark(round % 4);
            assert!(m.is_marked(round % 4));
            m.reset();
            assert!(!m.is_marked(round % 4));
        }
    }

    #[test]
    fn scratch_map_basic() {
        let mut s = ScratchMap::new(5);
        assert_eq!(s.get_or(2, 7), 7);
        s.set(2, 42);
        assert_eq!(s.get_or(2, 7), 42);
        assert_eq!(s.add(2, 3), 45);
        assert_eq!(s.add(4, 1), 1);
        s.reset();
        assert_eq!(s.get_or(2, 0), 0);
        assert_eq!(s.get_or(4, 0), 0);
    }
}
