//! Descriptive graph statistics, used by the experiment harness to
//! characterise workloads (the paper reports n, m and density per instance;
//! degeneracy, clustering and component structure explain *why* collections
//! behave differently under the solver).

use crate::degeneracy;
use crate::graph::{Graph, VertexId};

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertices.
    pub n: usize,
    /// Edges.
    pub m: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree `2m/n`.
    pub avg_degree: f64,
    /// Degeneracy δ(G).
    pub degeneracy: usize,
    /// Number of triangles.
    pub triangles: usize,
    /// Global clustering coefficient `3·triangles / #wedges` (0 if no
    /// wedges).
    pub global_clustering: f64,
    /// Number of connected components.
    pub components: usize,
    /// Vertices in the largest component.
    pub largest_component: usize,
}

/// Computes all statistics in O(δ(G)·m).
pub fn graph_stats(g: &Graph) -> GraphStats {
    let n = g.n();
    let degrees: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let triangles = g.triangle_count();
    let wedges: usize = degrees.iter().map(|&d| d * d.saturating_sub(1) / 2).sum();
    let comp = components(g);
    GraphStats {
        n,
        m: g.m(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * g.m() as f64 / n as f64
        },
        degeneracy: degeneracy::peel_bucket(g).degeneracy,
        triangles,
        global_clustering: if wedges == 0 {
            0.0
        } else {
            3.0 * triangles as f64 / wedges as f64
        },
        components: comp.count,
        largest_component: comp.largest,
    }
}

/// Connected components labelling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` = component id in `[0, count)`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
    /// Size of the largest component (0 for the empty graph).
    pub largest: usize,
}

/// Labels connected components by BFS in O(n + m).
pub fn components(g: &Graph) -> Components {
    let n = g.n();
    let mut label = vec![u32::MAX; n];
    let mut count = 0usize;
    let mut largest = 0usize;
    let mut queue: Vec<VertexId> = Vec::new();
    for start in 0..n as VertexId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        let id = count as u32;
        count += 1;
        label[start as usize] = id;
        queue.clear();
        queue.push(start);
        let mut size = 0usize;
        let mut head = 0usize;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            size += 1;
            for &w in g.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = id;
                    queue.push(w);
                }
            }
        }
        largest = largest.max(size);
    }
    Components {
        label,
        count,
        largest,
    }
}

/// Breadth-first distances from `source` (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &Graph, source: VertexId) -> Vec<u32> {
    let n = g.n();
    let mut dist = vec![u32::MAX; n];
    dist[source as usize] = 0;
    let mut queue = vec![source];
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dist[v as usize] + 1;
                queue.push(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_complete_graph() {
        let s = graph_stats(&gen::complete(5));
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 10);
        assert_eq!(s.min_degree, 4);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.degeneracy, 4);
        assert_eq!(s.triangles, 10);
        assert!((s.global_clustering - 1.0).abs() < 1e-12);
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 5);
    }

    #[test]
    fn stats_of_disconnected_graph() {
        let g = crate::Graph::from_edges(7, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        let s = graph_stats(&g);
        assert_eq!(s.components, 4, "triangle + edge + two isolated vertices");
        assert_eq!(s.largest_component, 3);
        assert_eq!(s.triangles, 1);
        assert_eq!(s.min_degree, 0);
    }

    #[test]
    fn empty_graph_stats() {
        let s = graph_stats(&crate::Graph::empty(0));
        assert_eq!(s.n, 0);
        assert_eq!(s.components, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.global_clustering, 0.0);
    }

    #[test]
    fn components_labels_are_consistent() {
        let g = crate::Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4)]);
        let c = components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.label[0], c.label[1]);
        assert_eq!(c.label[2], c.label[3]);
        assert_eq!(c.label[3], c.label[4]);
        assert_ne!(c.label[0], c.label[2]);
        assert_ne!(c.label[5], c.label[0]);
        assert_eq!(c.largest, 3);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = crate::Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, u32::MAX]);
    }

    #[test]
    fn clustering_of_triangle_free_graph_is_zero() {
        let g = gen::complete_multipartite(&[4, 4]);
        let s = graph_stats(&g);
        assert_eq!(s.triangles, 0);
        assert_eq!(s.global_clustering, 0.0);
    }

    #[test]
    fn community_graphs_have_high_clustering() {
        let mut rng = gen::seeded_rng(71);
        let fb = gen::community(
            &gen::CommunityParams {
                communities: 4,
                community_size: 30,
                p_in: 0.6,
                p_out: 0.01,
            },
            &mut rng,
        );
        let er = gen::gnp(120, fb.density(), &mut rng);
        let s_fb = graph_stats(&fb);
        let s_er = graph_stats(&er);
        assert!(
            s_fb.global_clustering > 2.0 * s_er.global_clustering,
            "community structure should inflate clustering ({} vs {})",
            s_fb.global_clustering,
            s_er.global_clustering
        );
    }
}
