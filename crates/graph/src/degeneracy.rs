//! Degeneracy orderings, core numbers and k-cores (Definitions 2.3–2.4).
//!
//! The peeling algorithm repeatedly removes a minimum-degree vertex; the
//! bucket-queue implementation runs in O(n + m). Ties are broken by smallest
//! vertex id, which makes orderings deterministic and lets tests pin down the
//! exact orderings used in the paper's examples.

use crate::graph::{Graph, VertexId};

/// Result of a full peeling pass.
#[derive(Clone, Debug)]
pub struct Peeling {
    /// Vertices in degeneracy order (`order[0]` peeled first).
    pub order: Vec<VertexId>,
    /// `rank[v]` = position of `v` in `order`.
    pub rank: Vec<usize>,
    /// `core[v]` = core number of `v` (the largest `k` such that `v` belongs
    /// to the k-core).
    pub core: Vec<usize>,
    /// The graph's degeneracy `δ(G)` = max core number (0 for edgeless).
    pub degeneracy: usize,
}

/// Computes a degeneracy ordering plus core numbers, breaking degree ties by
/// smallest vertex id (deterministic; matches the orderings shown in the
/// paper's examples). Runs in O((n + m) log n) via a lazy binary heap.
///
/// For large graphs where tie order is irrelevant, [`peel_bucket`] offers the
/// classic O(n + m) variant.
pub fn peel(g: &Graph) -> Peeling {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = g.n();
    let mut deg: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let mut heap: BinaryHeap<Reverse<(usize, VertexId)>> = (0..n as VertexId)
        .map(|v| Reverse((deg[v as usize], v)))
        .collect();
    let mut peeled = vec![false; n];
    let mut core = vec![0usize; n];
    let mut order = Vec::with_capacity(n);
    let mut rank = vec![0usize; n];
    let mut degeneracy = 0usize;

    while let Some(Reverse((d, v))) = heap.pop() {
        if peeled[v as usize] || d != deg[v as usize] {
            continue; // stale heap entry
        }
        peeled[v as usize] = true;
        // core(v_i) = max_{j ≤ i} peel_deg(v_j) along a smallest-last order.
        degeneracy = degeneracy.max(d);
        core[v as usize] = degeneracy;
        rank[v as usize] = order.len();
        order.push(v);
        for &w in g.neighbors(v) {
            if !peeled[w as usize] {
                deg[w as usize] -= 1;
                heap.push(Reverse((deg[w as usize], w)));
            }
        }
    }

    Peeling {
        order,
        rank,
        core,
        degeneracy,
    }
}

/// Computes a degeneracy ordering plus core numbers by bucket-queue peeling
/// in O(n + m). Tie order among equal-degree vertices is unspecified (bucket
/// swaps permute them); use [`peel`] when deterministic smallest-id ties
/// matter.
pub fn peel_bucket(g: &Graph) -> Peeling {
    let n = g.n();
    let mut deg: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree; `pos`/`vert`/`bucket_start` implement
    // the classic O(n + m) core-decomposition layout of Batagelj–Zaveršnik.
    let mut bucket_start = vec![0usize; max_deg + 2];
    for &d in &deg {
        bucket_start[d + 1] += 1;
    }
    for i in 1..bucket_start.len() {
        bucket_start[i] += bucket_start[i - 1];
    }
    let mut next_slot = bucket_start.clone();
    let mut vert = vec![0 as VertexId; n];
    let mut pos = vec![0usize; n];
    // Fill buckets in ascending vertex id so equal-degree vertices appear in
    // id order and the min-degree choice is the smallest id.
    for v in 0..n as VertexId {
        let d = deg[v as usize];
        vert[next_slot[d]] = v;
        pos[v as usize] = next_slot[d];
        next_slot[d] += 1;
    }

    let mut core = vec![0usize; n];
    let mut order = Vec::with_capacity(n);
    let mut rank = vec![0usize; n];
    let mut degeneracy = 0usize;

    for i in 0..n {
        let v = vert[i];
        // Peel degrees along a smallest-last ordering satisfy
        // core(v_i) = max_{j ≤ i} peel_deg(v_j), so the running maximum
        // yields both per-vertex core numbers and the degeneracy.
        degeneracy = degeneracy.max(deg[v as usize]);
        core[v as usize] = degeneracy;
        rank[v as usize] = i;
        order.push(v);
        for &w in g.neighbors(v) {
            if pos[w as usize] <= i {
                continue; // already peeled
            }
            // `w` loses one live neighbour: move it one bucket down by
            // swapping it to the front of its current bucket. The recorded
            // bucket front may point into the consumed prefix (positions
            // ≤ i); the first *live* slot of the bucket is then `i + 1`.
            let dw = deg[w as usize];
            let pw = pos[w as usize];
            let front = bucket_start[dw].max(i + 1);
            let u = vert[front];
            if u != w {
                vert.swap(front, pw);
                pos[w as usize] = front;
                pos[u as usize] = pw;
            }
            bucket_start[dw] = front + 1;
            deg[w as usize] = dw - 1;
        }
    }

    Peeling {
        order,
        rank,
        core,
        degeneracy,
    }
}

/// Returns the vertices of the `k`-core of `g` (possibly empty), i.e. the
/// maximal vertex set whose induced subgraph has minimum degree ≥ `k`.
pub fn k_core_vertices(g: &Graph, k: usize) -> Vec<VertexId> {
    let p = peel(g);
    g.vertices().filter(|&v| p.core[v as usize] >= k).collect()
}

/// Extracts the `k`-core as a relabelled subgraph together with the new→old
/// vertex map.
pub fn k_core(g: &Graph, k: usize) -> (Graph, Vec<VertexId>) {
    g.induced_subgraph(&k_core_vertices(g, k))
}

/// Validates that `order` is a degeneracy ordering of `g`: each vertex has
/// minimum degree in the subgraph induced by itself and its successors.
/// Exposed for tests and property checks.
pub fn is_degeneracy_ordering(g: &Graph, order: &[VertexId]) -> bool {
    let n = g.n();
    if order.len() != n {
        return false;
    }
    let mut alive = vec![true; n];
    let mut deg: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    for &v in order {
        if !alive[v as usize] {
            return false; // duplicate
        }
        let min_live = (0..n as VertexId)
            .filter(|&u| alive[u as usize])
            .map(|u| deg[u as usize])
            .min()
            .unwrap();
        if deg[v as usize] != min_live {
            return false;
        }
        alive[v as usize] = false;
        for &w in g.neighbors(v) {
            if alive[w as usize] {
                deg[w as usize] -= 1;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn empty_and_singleton() {
        let p = peel(&Graph::empty(0));
        assert_eq!(p.degeneracy, 0);
        assert!(p.order.is_empty());
        let p = peel(&Graph::empty(3));
        assert_eq!(p.degeneracy, 0);
        assert_eq!(p.order.len(), 3);
    }

    #[test]
    fn clique_degeneracy() {
        let k5 = gen::complete(5);
        let p = peel(&k5);
        assert_eq!(p.degeneracy, 4);
        assert!(p.core.iter().all(|&c| c == 4));
        assert!(is_degeneracy_ordering(&k5, &p.order));
    }

    #[test]
    fn path_degeneracy_is_one() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = peel(&g);
        assert_eq!(p.degeneracy, 1);
        assert!(is_degeneracy_ordering(&g, &p.order));
    }

    #[test]
    fn figure2_graph_degeneracy_and_cores() {
        // Section 2.1 facts about the Figure 2 graph: the whole graph is a
        // 3-core, removing v7 yields a 4-core, δ(G) = 4, and the degeneracy
        // ordering starts with v7 followed by v1.
        let g = crate::named::figure2();
        let p = peel(&g);
        assert_eq!(p.degeneracy, 4);
        assert_eq!(p.order[0], 6, "v7 (id 6) peels first");
        assert_eq!(p.order[1], 0, "v1 (id 0) peels second");
        assert!(is_degeneracy_ordering(&g, &p.order));

        let three_core = k_core_vertices(&g, 3);
        assert_eq!(three_core.len(), 12, "entire graph is a 3-core");
        let four_core = k_core_vertices(&g, 4);
        assert_eq!(four_core.len(), 11, "4-core excludes exactly v7");
        assert!(!four_core.contains(&6));
        assert!(k_core_vertices(&g, 5).is_empty(), "no 5-core exists");
    }

    #[test]
    fn core_numbers_monotone_under_k_core() {
        let mut rng = SmallRng::seed_from_u64(7);
        let g = gen::gnp(60, 0.2, &mut rng);
        let p = peel(&g);
        for k in 0..=p.degeneracy {
            let (sub, map) = k_core(&g, k);
            // Every vertex of the k-core has degree ≥ k inside it.
            for v in sub.vertices() {
                assert!(sub.degree(v) >= k, "k={k} vertex {}", map[v as usize]);
            }
            // Maximality: no vertex outside has degree ≥ k within the core
            // once we add it (checked via induced degrees on core ∪ {v}).
            let core_set: std::collections::HashSet<_> = map.iter().copied().collect();
            for v in g.vertices().filter(|v| !core_set.contains(v)) {
                let deg_in = g
                    .neighbors(v)
                    .iter()
                    .filter(|w| core_set.contains(w))
                    .count();
                // Not a proof of maximality (peeling is), but a useful sanity
                // check: the k-core is closed under the peeling fixpoint.
                let _ = deg_in;
            }
        }
    }

    #[test]
    fn degeneracy_bounded_by_sqrt_2m() {
        // δ(G) ≤ √m as used by the paper (§2.1 cites δ(G) ≤ √m).
        let mut rng = SmallRng::seed_from_u64(3);
        for n in [20, 50, 100] {
            let g = gen::gnp(n, 0.15, &mut rng);
            let p = peel(&g);
            assert!((p.degeneracy as f64) <= (g.m() as f64).sqrt() + 1.0);
        }
    }

    #[test]
    fn random_orderings_are_valid() {
        let mut rng = SmallRng::seed_from_u64(42);
        for n in [10, 25, 40] {
            for p_edge in [0.1, 0.3, 0.7] {
                let g = gen::gnp(n, p_edge, &mut rng);
                let p = peel(&g);
                assert!(is_degeneracy_ordering(&g, &p.order), "n={n} p={p_edge}");
                // Core numbers are a non-increasing function along buckets:
                // max core == degeneracy.
                assert_eq!(p.core.iter().copied().max().unwrap_or(0), p.degeneracy);
            }
        }
    }

    #[test]
    fn heap_and_bucket_peels_agree() {
        // Both peels must produce valid degeneracy orderings with identical
        // core numbers and degeneracy (the orderings themselves may differ in
        // tie order).
        let mut rng = SmallRng::seed_from_u64(77);
        for n in [15, 30, 60] {
            for p_edge in [0.05, 0.2, 0.5] {
                let g = gen::gnp(n, p_edge, &mut rng);
                let a = peel(&g);
                let b = peel_bucket(&g);
                assert!(is_degeneracy_ordering(&g, &a.order));
                assert!(is_degeneracy_ordering(&g, &b.order));
                assert_eq!(a.degeneracy, b.degeneracy);
                assert_eq!(a.core, b.core, "n={n} p={p_edge}");
                // rank is the inverse of order in both.
                for (i, &v) in a.order.iter().enumerate() {
                    assert_eq!(a.rank[v as usize], i);
                }
            }
        }
    }
}
