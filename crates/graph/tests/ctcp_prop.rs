//! Property tests for the incremental CTCP reducer: against random and
//! planted instances, an incrementally tightened [`Ctcp`] must land on
//! exactly the fixpoint the from-scratch `truss_filter` + `k_core`
//! iteration computes — same surviving vertices, same surviving edges —
//! for every k and every point of a rising lower-bound schedule.

use kdc_graph::ctcp::{scratch_fixpoint, Ctcp};
use kdc_graph::{gen, Graph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tighten_matches_scratch_fixpoint_on_gnp(
        seed in 0u64..10_000,
        n in 12usize..40,
        p_percent in 10usize..45,
        k in 0usize..4,
    ) {
        let mut rng = gen::seeded_rng(seed);
        let g = gen::gnp(n, p_percent as f64 / 100.0, &mut rng);
        let mut warm = Ctcp::new(&g, k);
        // A rising schedule, re-checking the invariant at every step: the
        // incremental state must agree with a from-scratch fixpoint at the
        // same bound, edges included.
        for lb in [k + 1, k + 2, k + 4, k + 6] {
            warm.tighten(lb);
            let (expected, expected_keep) = scratch_fixpoint(&g, k, lb);
            prop_assert_eq!(warm.alive_vertices(), expected_keep, "lb {}", lb);
            let (adj, _) = warm.extract_universe();
            prop_assert_eq!(Graph::from_adjacency(adj), expected, "lb {}", lb);
        }
    }

    #[test]
    fn tighten_matches_scratch_fixpoint_on_planted(
        seed in 0u64..10_000,
        k in 0usize..3,
    ) {
        let mut rng = gen::seeded_rng(seed);
        let (g, planted) = gen::planted_defective_clique(120, 10, k, 0.05, &mut rng);
        let mut warm = Ctcp::new(&g, k);
        for lb in [4usize, 7, 9] {
            warm.tighten(lb);
            let (expected, expected_keep) = scratch_fixpoint(&g, k, lb);
            prop_assert_eq!(warm.alive_vertices(), expected_keep, "lb {}", lb);
            let (adj, _) = warm.extract_universe();
            prop_assert_eq!(Graph::from_adjacency(adj), expected, "lb {}", lb);
            // Soundness: the planted solution (size 10 > lb would require
            // lb < 10) survives any tighten at lb < 10.
            if lb < planted.len() {
                for &v in &planted {
                    prop_assert!(warm.is_alive(v), "planted vertex {} removed", v);
                }
            }
        }
    }

    #[test]
    fn tighten_batch_is_equivalent_to_the_sequential_schedule(
        seed in 0u64..10_000,
        n in 12usize..40,
        k in 0usize..3,
        a in 0usize..10,
        b in 0usize..10,
        c in 0usize..10,
    ) {
        let mut rng = gen::seeded_rng(seed);
        let g = gen::gnp(n, 0.3, &mut rng);
        let schedule = [a, b, c];
        let mut sequential = Ctcp::new(&g, k);
        let mut removed_edges = 0u64;
        let mut removed_vertices = Vec::new();
        for &lb in &schedule {
            let rem = sequential.tighten(lb);
            removed_edges += rem.edges;
            removed_vertices.extend(rem.vertices);
        }
        let mut batched = Ctcp::new(&g, k);
        let rem = batched.tighten_batch(&schedule);
        prop_assert_eq!(batched.lb(), sequential.lb());
        prop_assert_eq!(batched.alive_vertices(), sequential.alive_vertices());
        prop_assert_eq!(rem.edges, removed_edges);
        let mut batch_v = rem.vertices;
        batch_v.sort_unstable();
        removed_vertices.sort_unstable();
        prop_assert_eq!(batch_v, removed_vertices);
        let (adj_batch, _) = batched.extract_universe();
        let (adj_seq, _) = sequential.extract_universe();
        prop_assert_eq!(adj_batch, adj_seq);
    }

    #[test]
    fn removal_counters_are_conserved(
        seed in 0u64..10_000,
        n in 10usize..35,
        k in 0usize..3,
        lb in 0usize..12,
    ) {
        let mut rng = gen::seeded_rng(seed);
        let g = gen::gnp(n, 0.3, &mut rng);
        let mut c = Ctcp::new(&g, k);
        let rem = c.tighten(lb);
        let (v_removed, e_removed) = c.removal_counters();
        prop_assert_eq!(v_removed as usize, rem.vertices.len());
        prop_assert_eq!(e_removed, rem.edges);
        prop_assert_eq!(c.alive_n() + v_removed as usize, g.n());
        prop_assert_eq!(c.alive_m() + e_removed as usize, g.m());
    }
}
