//! Property-based tests for the graph substrate's data structures.

use kdc_graph::bitset::{BitMatrix, BitSet};
use kdc_graph::scratch::{Marker, ScratchMap};
use kdc_graph::{gen, io, Graph};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bitset_models_hashset(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..150)) {
        let mut bs = BitSet::new(200);
        let mut hs: HashSet<usize> = HashSet::new();
        for (v, insert) in ops {
            if insert {
                prop_assert_eq!(bs.insert(v), hs.insert(v));
            } else {
                prop_assert_eq!(bs.remove(v), hs.remove(&v));
            }
        }
        prop_assert_eq!(bs.len(), hs.len());
        let mut sorted: Vec<usize> = hs.into_iter().collect();
        sorted.sort_unstable();
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn bitset_algebra_matches_sets(a in proptest::collection::hash_set(0usize..128, 0..60),
                                   b in proptest::collection::hash_set(0usize..128, 0..60)) {
        let mk = |s: &HashSet<usize>| {
            let mut bs = BitSet::new(128);
            for &v in s {
                bs.insert(v);
            }
            bs
        };
        let (ba, bb) = (mk(&a), mk(&b));
        prop_assert_eq!(ba.intersection_len(&bb), a.intersection(&b).count());

        let mut inter = ba.clone();
        inter.intersect_with(&bb);
        prop_assert_eq!(inter.len(), a.intersection(&b).count());

        let mut uni = ba.clone();
        uni.union_with(&bb);
        prop_assert_eq!(uni.len(), a.union(&b).count());

        let mut diff = ba.clone();
        diff.difference_with(&bb);
        prop_assert_eq!(diff.len(), a.difference(&b).count());
    }

    #[test]
    fn bitmatrix_row_ops_match_bitsets(edges in proptest::collection::vec((0usize..48, 0usize..48), 0..120)) {
        let mut m = BitMatrix::new(48, 48);
        let mut rows: Vec<HashSet<usize>> = vec![HashSet::new(); 48];
        for (r, c) in edges {
            m.set(r, c);
            rows[r].insert(c);
        }
        for (r, expected) in rows.iter().enumerate() {
            prop_assert_eq!(m.row_len(r), expected.len());
            prop_assert_eq!(m.row_iter(r).collect::<HashSet<_>>(), expected.clone());
        }
        prop_assert_eq!(m.row_intersection_len(0, 1), rows[0].intersection(&rows[1]).count());
    }

    #[test]
    fn marker_reset_isolates_epochs(vals in proptest::collection::vec(0usize..64, 1..40)) {
        let mut m = Marker::new(64);
        for &v in &vals {
            m.mark(v);
            prop_assert!(m.is_marked(v));
        }
        m.reset();
        for &v in &vals {
            prop_assert!(!m.is_marked(v));
        }
    }

    #[test]
    fn scratch_map_models_hashmap(kv in proptest::collection::vec((0usize..64, 0usize..1000), 0..60)) {
        let mut s = ScratchMap::new(64);
        let mut reference = std::collections::HashMap::new();
        for (key, val) in kv {
            s.set(key, val);
            reference.insert(key, val);
        }
        for (k, v) in &reference {
            prop_assert_eq!(s.get_or(*k, usize::MAX), *v);
        }
        s.reset();
        for k in reference.keys() {
            prop_assert_eq!(s.get_or(*k, usize::MAX), usize::MAX);
        }
    }

    #[test]
    fn graph_construction_canonicalizes(n in 2usize..30,
                                        raw in proptest::collection::vec((0u32..30, 0u32..30), 0..80)) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|(a, b)| (a % n as u32, b % n as u32))
            .collect();
        let g = Graph::from_edges(n, &edges);
        // Adjacency symmetric, sorted, deduped, no self-loops.
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!nbrs.contains(&v));
            for &w in nbrs {
                prop_assert!(g.has_edge(w, v));
            }
        }
        // Reversed duplicates collapse: rebuilding from the canonical edge
        // list is the identity.
        let rebuilt = Graph::from_edges(n, &g.edges().collect::<Vec<_>>());
        prop_assert_eq!(rebuilt, g);
    }

    #[test]
    fn io_roundtrip_any_graph(n in 1usize..40, p in 0.0f64..0.6, seed in 0u64..1000) {
        let g = gen::gnp(n, p, &mut gen::seeded_rng(seed));
        let dir = std::env::temp_dir().join("kdc_graph_proptests");
        std::fs::create_dir_all(&dir).unwrap();
        let salt = format!("{n}-{seed}");
        for ext in ["clq", "graph", "txt"] {
            let path = dir.join(format!("g-{salt}.{ext}"));
            match ext {
                "clq" => io::write_dimacs(&g, &path).unwrap(),
                "graph" => io::write_metis(&g, &path).unwrap(),
                _ => io::write_edge_list(&g, &path).unwrap(),
            }
            let back = io::read_graph(&path).unwrap();
            // Edge-list files size the graph by max id: isolated tail
            // vertices are dropped there, so compare edges.
            prop_assert_eq!(back.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
            if ext != "txt" {
                prop_assert_eq!(back, g.clone());
            }
        }
    }

    #[test]
    fn edge_list_parser_never_panics(text in "[ -~\n]{0,300}") {
        // Fuzz: arbitrary printable input must parse or error, never panic.
        let _ = io::parse_edge_list(&text, false);
        let _ = io::parse_edge_list(&text, true);
        let _ = io::parse_dimacs(&text);
        let _ = io::parse_metis(&text);
    }
}
