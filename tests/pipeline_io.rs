//! Full-pipeline tests: generate → write → read → preprocess → solve →
//! verify, plus limit behaviour.

use kdc_suite::graph::{gen, io};
use kdc_suite::kdc::{solver::preprocess_report, Solver, SolverConfig, Status};
use std::time::Duration;

#[test]
fn roundtrip_through_files_preserves_answers() {
    let dir = std::env::temp_dir().join("kdc_pipeline_tests");
    std::fs::create_dir_all(&dir).unwrap();
    let mut rng = gen::seeded_rng(123);
    let g = gen::gnp(40, 0.25, &mut rng);

    let clq = dir.join("g.clq");
    io::write_dimacs(&g, &clq).unwrap();
    let edge = dir.join("g.txt");
    io::write_edge_list(&g, &edge).unwrap();

    let g1 = io::read_graph(&clq).unwrap();
    let g2 = io::read_graph(&edge).unwrap();
    assert_eq!(g1, g);
    assert_eq!(g2, g);

    for k in [1usize, 3] {
        let a = Solver::new(&g, k, SolverConfig::kdc()).solve().size();
        let b = Solver::new(&g1, k, SolverConfig::kdc()).solve().size();
        assert_eq!(a, b);
    }
}

#[test]
fn bundled_example_data_is_figure2() {
    let g = io::read_graph(std::path::Path::new("examples/data/figure2.clq")).unwrap();
    assert_eq!(g, kdc_suite::graph::named::figure2());
}

#[test]
fn preprocessing_report_is_consistent_with_solver() {
    let mut rng = gen::seeded_rng(9);
    let (g, _) = gen::planted_defective_clique(300, 15, 2, 0.02, &mut rng);
    let report = preprocess_report(&g, 2, &SolverConfig::kdc());
    let sol = Solver::new(&g, 2, SolverConfig::kdc()).solve();
    assert_eq!(report.initial.len(), sol.stats.initial_solution_size);
    assert_eq!(report.n0, sol.stats.preprocessed_n);
    assert_eq!(report.m0, sol.stats.preprocessed_m);
    assert!(report.n0 <= g.n());
    assert!(g.is_k_defective_clique(&report.initial, 2));
}

#[test]
fn degen_preprocessing_is_weaker_but_cheaper() {
    // Table 4's qualitative claim: kDC's preprocessing yields a no-larger
    // reduced graph and a no-smaller initial solution than kDC-Degen's.
    let mut rng = gen::seeded_rng(10);
    let g = gen::community(
        &gen::CommunityParams {
            communities: 5,
            community_size: 30,
            p_in: 0.5,
            p_out: 0.01,
        },
        &mut rng,
    );
    for k in [1usize, 5, 10] {
        let full = preprocess_report(&g, k, &SolverConfig::kdc());
        let degen = preprocess_report(&g, k, &SolverConfig::degen());
        assert!(full.initial.len() >= degen.initial.len(), "k={k}");
        assert!(full.n0 <= degen.n0, "k={k}");
        assert!(full.m0 <= degen.m0, "k={k}");
    }
}

#[test]
fn zero_time_limit_still_returns_valid_solution() {
    let mut rng = gen::seeded_rng(11);
    let g = gen::gnp(80, 0.4, &mut rng);
    let cfg = SolverConfig::kdc().with_time_limit(Duration::from_nanos(1));
    let sol = Solver::new(&g, 5, cfg).solve();
    assert!(g.is_k_defective_clique(&sol.vertices, 5));
    // With a 1 ns limit the search cannot finish on this instance.
    assert_eq!(sol.status, Status::TimedOut);
    // The heuristic floor still provides a non-trivial anytime answer.
    assert!(sol.size() >= 3);
}

#[test]
fn node_limit_one_returns_heuristic_answer() {
    let mut rng = gen::seeded_rng(12);
    let g = gen::gnp(60, 0.5, &mut rng);
    let cfg = SolverConfig::kdc().with_node_limit(1);
    let sol = Solver::new(&g, 3, cfg).solve();
    assert!(g.is_k_defective_clique(&sol.vertices, 3));
    assert!(sol.size() >= sol.stats.initial_solution_size);
}
