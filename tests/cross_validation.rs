//! Cross-validation of the optimised solvers against the independent
//! brute-force oracle on randomized small instances.

use kdc_suite::baselines::{max_clique_size, max_defective_size_naive};
use kdc_suite::graph::{gen, Graph};
use kdc_suite::kdc::{max_defective_clique, Solver, SolverConfig};

#[test]
fn kdc_matches_naive_on_gnp_sweep() {
    let mut rng = gen::seeded_rng(0xA11CE);
    for trial in 0..30 {
        let n = 10 + (trial % 8);
        let p = 0.15 + 0.1 * (trial % 7) as f64;
        let g = gen::gnp(n, p, &mut rng);
        for k in [0usize, 1, 2, 4, 7] {
            let expected = max_defective_size_naive(&g, k);
            let sol = max_defective_clique(&g, k);
            assert_eq!(sol.size(), expected, "trial {trial}: n={n} p={p:.2} k={k}");
            assert!(g.is_k_defective_clique(&sol.vertices, k));
            assert!(sol.is_optimal());
        }
    }
}

#[test]
fn kdc_matches_naive_on_structured_graphs() {
    let graphs: Vec<(&str, Graph)> = vec![
        ("figure2", kdc_suite::graph::named::figure2()),
        ("figure4", kdc_suite::graph::named::figure4()),
        ("figure6", kdc_suite::graph::named::figure6_like()),
        ("k33", gen::complete_multipartite(&[3, 3])),
        ("k333", gen::complete_multipartite(&[3, 3, 3])),
        ("grid44", gen::grid(4, 4, true)),
        (
            "path",
            Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]),
        ),
    ];
    for (name, g) in &graphs {
        for k in 0..=6 {
            let expected = max_defective_size_naive(g, k);
            let got = max_defective_clique(g, k).size();
            assert_eq!(got, expected, "{name} k={k}");
        }
    }
}

#[test]
fn k_zero_equals_max_clique_everywhere() {
    let mut rng = gen::seeded_rng(0xBEEF);
    for _ in 0..15 {
        let g = gen::gnp(20, 0.45, &mut rng);
        let clique = max_clique_size(&g);
        let defective0 = max_defective_clique(&g, 0).size();
        assert_eq!(clique, defective0);
    }
}

#[test]
fn defective_size_dominates_clique_size() {
    let mut rng = gen::seeded_rng(0xCAFE);
    for _ in 0..10 {
        let g = gen::chung_lu(120, 8.0, 2.5, &mut rng);
        let w = max_clique_size(&g);
        let mut prev = w;
        for k in 1..=6 {
            let s = max_defective_clique(&g, k).size();
            assert!(s >= prev, "k={k}: {s} < {prev}");
            prev = s;
        }
    }
}

#[test]
fn heuristics_never_exceed_optimum() {
    let mut rng = gen::seeded_rng(0xD0D0);
    for _ in 0..15 {
        let g = gen::gnp(14, 0.4, &mut rng);
        for k in [1usize, 3] {
            let opt = max_defective_size_naive(&g, k);
            let h1 = kdc_suite::kdc::heuristic::degen(&g, k).len();
            let h2 = kdc_suite::kdc::heuristic::degen_opt(&g, k).len();
            assert!(h1 <= opt && h2 <= opt);
            assert!(h2 >= h1);
        }
    }
}

#[test]
fn theory_config_agrees_with_practical_config() {
    // kDC-t explores without any lb-based pruning; both must agree.
    let mut rng = gen::seeded_rng(0xF00D);
    for _ in 0..10 {
        let g = gen::gnp(16, 0.5, &mut rng);
        for k in [0usize, 2, 5] {
            let a = Solver::new(&g, k, SolverConfig::kdc()).solve();
            let b = Solver::new(&g, k, SolverConfig::kdc_t()).solve();
            assert_eq!(a.size(), b.size());
        }
    }
}
