//! Property-based tests (proptest) tying the whole stack together: random
//! graphs in, verified invariants out.

use kdc_suite::baselines::{max_defective_clique_naive, max_defective_size_naive};
use kdc_suite::graph::{coloring, degeneracy, truss, Graph};
use kdc_suite::kdc::{heuristic, probe, verify, Solver, SolverConfig};
use proptest::prelude::*;

/// Strategy: a random graph as (n, edge list over 0..n).
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.min(60))
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_output_is_optimal_and_valid(g in arb_graph(12), k in 0usize..5) {
        let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
        prop_assert!(g.is_k_defective_clique(&sol.vertices, k));
        prop_assert!(sol.is_optimal());
        let expected = max_defective_size_naive(&g, k);
        prop_assert_eq!(sol.size(), expected);
    }

    #[test]
    fn every_preset_is_exact(g in arb_graph(10), k in 0usize..4) {
        let expected = max_defective_size_naive(&g, k);
        for cfg in [
            SolverConfig::kdc(),
            SolverConfig::kdc_t(),
            SolverConfig::without_ub1(),
            SolverConfig::without_rr3_rr4(),
            SolverConfig::without_ub1_rr3_rr4(),
            SolverConfig::degen(),
            SolverConfig::kdbb_like(),
            SolverConfig::madec_like(),
        ] {
            let sol = Solver::new(&g, k, cfg).solve();
            prop_assert_eq!(sol.size(), expected);
        }
    }

    #[test]
    fn matrix_limit_does_not_change_answers(g in arb_graph(12), k in 0usize..4) {
        let with_matrix = Solver::new(&g, k, SolverConfig::kdc()).solve();
        let mut cfg = SolverConfig::kdc();
        cfg.matrix_limit = 0; // force the adjacency-list paths
        let without = Solver::new(&g, k, cfg).solve();
        prop_assert_eq!(with_matrix.size(), without.size());
    }

    #[test]
    fn heuristics_are_valid_and_ordered(g in arb_graph(20), k in 0usize..6) {
        let d = heuristic::degen(&g, k);
        let o = heuristic::degen_opt(&g, k);
        prop_assert!(g.is_k_defective_clique(&d, k));
        prop_assert!(g.is_k_defective_clique(&o, k));
        prop_assert!(o.len() >= d.len());
    }

    #[test]
    fn root_bounds_dominate_optimum(g in arb_graph(12), k in 0usize..4) {
        let opt = max_defective_size_naive(&g, k);
        let b = probe::root_bounds(&g, &[], k);
        prop_assert!(b.ub1 >= opt);
        prop_assert!(b.eq2 >= opt);
        prop_assert!(b.ub3 >= opt);
        prop_assert!(b.ub1 <= b.eq2, "UB1 must be at least as tight as Eq.(2)");
    }

    #[test]
    fn naive_solution_extends_to_maximal(g in arb_graph(12), k in 0usize..4) {
        let c = max_defective_clique_naive(&g, k);
        let m = verify::extend_to_maximal(&g, &c, k);
        prop_assert!(verify::is_maximal_k_defective(&g, &m, k));
        // A maximum solution is already maximal.
        prop_assert_eq!(m.len(), c.len());
    }

    #[test]
    fn degeneracy_ordering_and_cores_consistent(g in arb_graph(20)) {
        let p = degeneracy::peel(&g);
        prop_assert!(degeneracy::is_degeneracy_ordering(&g, &p.order));
        let pb = degeneracy::peel_bucket(&g);
        prop_assert!(degeneracy::is_degeneracy_ordering(&g, &pb.order));
        prop_assert_eq!(p.degeneracy, pb.degeneracy);
        prop_assert_eq!(&p.core, &pb.core);
        // k-core members have core number ≥ k, and the k-core has min degree ≥ k.
        for k in 0..=p.degeneracy {
            let (sub, _) = degeneracy::k_core(&g, k);
            for v in sub.vertices() {
                prop_assert!(sub.degree(v) >= k);
            }
        }
    }

    #[test]
    fn truss_edges_have_support(g in arb_graph(16), k in 3usize..6) {
        let t = truss::k_truss(&g, k);
        for (u, v) in t.edges() {
            let common = t
                .neighbors(u)
                .iter()
                .filter(|w| t.neighbors(v).contains(w))
                .count();
            prop_assert!(common >= k - 2, "edge ({u},{v}) support {common} < {}", k - 2);
        }
    }

    #[test]
    fn coloring_is_proper_and_bounded(g in arb_graph(24)) {
        let c = coloring::greedy_degeneracy(&g);
        prop_assert!(c.is_proper(&g));
        let p = degeneracy::peel(&g);
        prop_assert!(c.num_colors <= p.degeneracy + 1);
    }

    #[test]
    fn complement_duality(g in arb_graph(10), k in 0usize..4) {
        // A vertex set is a k-defective clique of G iff it induces ≤ k edges
        // in the complement graph.
        let comp = g.complement();
        let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
        prop_assert!(comp.edges_within(&sol.vertices) <= k);
    }

    #[test]
    fn solution_invariant_under_relabelling(g in arb_graph(12), k in 0usize..4) {
        // Solving a relabelled copy yields the same optimum size.
        let n = g.n();
        let perm: Vec<u32> = (0..n as u32).rev().collect();
        let edges: Vec<(u32, u32)> = g
            .edges()
            .map(|(u, v)| (perm[u as usize], perm[v as usize]))
            .collect();
        let h = Graph::from_edges(n, &edges);
        let a = Solver::new(&g, k, SolverConfig::kdc()).solve();
        let b = Solver::new(&h, k, SolverConfig::kdc()).solve();
        prop_assert_eq!(a.size(), b.size());
    }
}
