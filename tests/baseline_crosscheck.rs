//! Cross-checks between *independent* solver implementations on medium
//! instances (too large for brute force, small enough for RDS): the kDC
//! engine, Russian Doll Search, the max-clique solver and the §6 extensions
//! must tell one consistent story.

use kdc_suite::baselines::{max_clique_size, max_defective_size_rds};
use kdc_suite::graph::{gen, named};
use kdc_suite::kdc::{decompose, topr, Solver, SolverConfig};

#[test]
fn rds_and_kdc_agree_on_medium_graphs() {
    let mut rng = gen::seeded_rng(0x5D5);
    for trial in 0..6 {
        let g = gen::gnp(35, 0.3, &mut rng);
        for k in [0usize, 1, 3] {
            let a = Solver::new(&g, k, SolverConfig::kdc()).solve();
            let b = max_defective_size_rds(&g, k);
            assert_eq!(a.size(), b, "trial {trial} k {k}");
        }
    }
}

#[test]
fn rds_and_kdc_agree_on_structured_graphs() {
    let graphs = [
        named::figure2(),
        named::figure4(),
        gen::grid(5, 6, true),
        gen::complete_multipartite(&[4, 4, 4]),
        gen::watts_strogatz(40, 6, 0.2, &mut gen::seeded_rng(9)),
    ];
    for (i, g) in graphs.iter().enumerate() {
        for k in [0usize, 2, 4] {
            let a = Solver::new(g, k, SolverConfig::kdc()).solve();
            let b = max_defective_size_rds(g, k);
            assert_eq!(a.size(), b, "graph {i} k {k}");
        }
    }
}

#[test]
fn four_way_consistency_on_community_graph() {
    let g = gen::community(
        &gen::CommunityParams {
            communities: 3,
            community_size: 18,
            p_in: 0.65,
            p_out: 0.03,
        },
        &mut gen::seeded_rng(0xABC),
    );
    for k in [0usize, 2, 4] {
        let solver = Solver::new(&g, k, SolverConfig::kdc()).solve();
        let rds = max_defective_size_rds(&g, k);
        let decomposed = decompose::solve_decomposed(&g, k, SolverConfig::kdc(), 2);
        let top1 = topr::top_r_maximal(&g, k, 1, SolverConfig::kdc());
        assert_eq!(solver.size(), rds, "k = {k}");
        assert_eq!(solver.size(), decomposed.size(), "k = {k}");
        assert_eq!(solver.size(), top1[0].len(), "k = {k}");
        if k == 0 {
            assert_eq!(solver.size(), max_clique_size(&g));
        }
    }
}

#[test]
fn rmat_graph_consistency() {
    let g = gen::rmat(8, 6, &mut gen::seeded_rng(0x777));
    for k in [0usize, 2] {
        let a = Solver::new(&g, k, SolverConfig::kdc()).solve();
        let b = Solver::new(&g, k, SolverConfig::kdbb_like()).solve();
        let c = max_defective_size_rds(&g, k);
        assert_eq!(a.size(), b.size());
        assert_eq!(a.size(), c);
    }
}

#[test]
fn counting_confirms_solver_on_structured_graphs() {
    use kdc_suite::kdc::counting::count_k_defective_cliques;
    for g in [named::figure2(), gen::complete_multipartite(&[3, 3, 3])] {
        for k in [0usize, 1, 2] {
            let counts = count_k_defective_cliques(&g, k, 1);
            let opt = Solver::new(&g, k, SolverConfig::kdc()).solve();
            assert_eq!(counts.max_size(), opt.size(), "k = {k}");
            assert!(counts.counts[opt.size()] >= 1);
        }
    }
}
