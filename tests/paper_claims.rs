//! End-to-end checks of concrete claims made in the paper's prose, examples
//! and figures.

use kdc_suite::baselines::max_clique_size;
use kdc_suite::graph::{degeneracy, gen, named, truss};
use kdc_suite::kdc::{gamma_k, heuristic, max_defective_clique, probe, sigma_k};

/// §1, Figure 1: "the maximum k-defective clique is no less than and usually
/// much larger than the maximum clique"; on the Figure 1 graph the maximum
/// clique is 4 and the maximum k-defective clique is 4 + k for k ≤ 4.
/// The figure's drawing is not reproduced in the text; we verify the general
/// claim on the fully specified Figure 2 graph instead.
#[test]
fn figure1_claim_defective_grows_with_k() {
    let g = named::figure2();
    assert_eq!(max_clique_size(&g), 5);
    assert_eq!(max_defective_clique(&g, 2).size(), 6);
    assert_eq!(max_defective_clique(&g, 5).size(), 7);
}

/// §2: the worked facts about the Figure 2 graph.
#[test]
fn section2_figure2_facts() {
    let g = named::figure2();
    // "{v8..v12} is a maximum clique and also a maximum 1-defective clique."
    assert_eq!(max_defective_clique(&g, 1).size(), 5);
    assert!(g.is_k_defective_clique(&[7, 8, 9, 10, 11], 0));
    // "both {v1,v2,v3,v4,v6} and {v1,v2,v3,v5,v6} are maximum 1-defective
    // cliques" — they are valid and tie the optimum.
    assert!(g.is_k_defective_clique(&[0, 1, 2, 3, 5], 1));
    assert!(g.is_k_defective_clique(&[0, 1, 2, 4, 5], 1));
    // "{v1..v6} is a maximum 2-defective clique missing (v2,v4), (v1,v5)."
    let sol2 = max_defective_clique(&g, 2);
    assert_eq!(sol2.vertices, vec![0, 1, 2, 3, 4, 5]);
    assert_eq!(g.missing_edges_within(&sol2.vertices), 2);
}

/// §2.1: degeneracy/core/truss facts about Figure 2.
#[test]
fn section21_core_truss_facts() {
    let g = named::figure2();
    let p = degeneracy::peel(&g);
    assert_eq!(p.degeneracy, 4);
    assert_eq!(&p.order[..2], &[6, 0], "(v7, v1, …)");
    assert_eq!(degeneracy::k_core_vertices(&g, 3).len(), 12);
    assert_eq!(degeneracy::k_core_vertices(&g, 4).len(), 11);
    assert!(degeneracy::k_core_vertices(&g, 5).is_empty());
    assert_eq!(truss::k_truss(&g, 3).m(), 26);
    assert_eq!(truss::k_truss(&g, 4).m(), 23);
    assert_eq!(truss::k_truss(&g, 5).m(), 10);
}

/// §3.1.2: γ_k values and the complexity comparison against MADEC+.
#[test]
fn gamma_values_and_ordering() {
    assert!((gamma_k(0) - 1.6180).abs() < 1e-3);
    assert!((gamma_k(1) - 1.8393).abs() < 1e-3);
    assert!((gamma_k(2) - 1.9276).abs() < 1e-3);
    for k in 1..12 {
        assert!(
            gamma_k(k) < sigma_k(k),
            "kDC strictly beats MADEC+ for k ≥ 1"
        );
        assert!(gamma_k(k) < 2.0, "beats the trivial O*(2^n)");
    }
}

/// §3.2.1, Examples 3.6 and 3.7: the Figure 5 instance where Eq. (2) gives
/// 11 but UB1 gives 3 (and the true optimum is 3).
#[test]
fn examples_36_37_bound_gap() {
    let (g, s) = named::figure5();
    let b = probe::root_bounds(&g, &s, 3);
    assert_eq!(b.eq2, 11);
    assert_eq!(b.ub1, 3);
    // Optimum of the instance: add exactly one more vertex.
    // (Brute force over the 9 candidates.)
    let mut best = 0usize;
    for mask in 0u32..(1 << 9) {
        let mut set: Vec<u32> = s.clone();
        for b in 0..9 {
            if mask >> b & 1 == 1 {
                set.push(2 + b);
            }
        }
        if g.is_k_defective_clique(&set, 3) {
            best = best.max(set.len());
        }
    }
    assert_eq!(best, 3, "UB1 is exactly tight here");
}

/// §3.3, Example 3.8: Degen finds 3 vertices, Degen-opt finds 4 (optimal)
/// on the Figure 6-like instance with k = 1.
#[test]
fn example_38_degen_opt_wins() {
    let g = named::figure6_like();
    assert_eq!(heuristic::degen(&g, 1).len(), 3);
    assert_eq!(heuristic::degen_opt(&g, 1).len(), 4);
    assert_eq!(max_defective_clique(&g, 1).size(), 4);
}

/// §4 headline: kDC explores no more search nodes than the weaker
/// configurations (nodes being the machine-independent proxy for time).
#[test]
fn ablation_node_ordering_on_community_graphs() {
    use kdc_suite::kdc::{Solver, SolverConfig};
    let mut rng = gen::seeded_rng(77);
    let g = gen::community(
        &gen::CommunityParams {
            communities: 4,
            community_size: 25,
            p_in: 0.6,
            p_out: 0.02,
        },
        &mut rng,
    );
    for k in [1usize, 3, 5] {
        let full = Solver::new(&g, k, SolverConfig::kdc()).solve();
        let no_ub1 = Solver::new(&g, k, SolverConfig::without_ub1()).solve();
        let kdbb = Solver::new(&g, k, SolverConfig::kdbb_like()).solve();
        assert_eq!(full.size(), no_ub1.size());
        assert_eq!(full.size(), kdbb.size());
        assert!(
            full.stats.nodes <= no_ub1.stats.nodes,
            "k={k}: UB1 must not grow the tree ({} vs {})",
            full.stats.nodes,
            no_ub1.stats.nodes
        );
        assert!(
            full.stats.nodes <= kdbb.stats.nodes,
            "k={k}: kDC must not explore more than KDBB-like ({} vs {})",
            full.stats.nodes,
            kdbb.stats.nodes
        );
    }
}

/// §6: the top-r extensions expose the documented semantics.
#[test]
fn topr_extensions() {
    use kdc_suite::kdc::topr::{top_r_diversified, top_r_maximal};
    use kdc_suite::kdc::SolverConfig;
    let g = named::figure2();
    let top = top_r_maximal(&g, 1, 3, SolverConfig::kdc());
    assert_eq!(top[0].len(), 5);
    assert!(top.len() >= 2);
    let div = top_r_diversified(&g, 1, 2, SolverConfig::kdc());
    assert_eq!(div.len(), 2);
    // Diversified cliques are disjoint.
    let all: std::collections::HashSet<_> = div.iter().flatten().collect();
    assert_eq!(all.len(), div[0].len() + div[1].len());
}
