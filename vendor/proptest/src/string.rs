//! String strategies: a `&str` pattern is interpreted as a (small subset of
//! a) regex and random matching strings are generated.
//!
//! Supported syntax: literal characters, `.` (any printable ASCII), escapes
//! (`\n`, `\t`, `\r`, `\\`, `\.`, `\[`, `\]`, `\{`, `\}`), character classes
//! `[...]` with ranges and negation, and the quantifiers `*`, `+`, `?`,
//! `{n}`, `{m,n}`. This covers patterns like `"[ -~\n]{0,300}"` used by the
//! fuzz-style tests; unsupported constructs are treated as literals.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

const UNBOUNDED_REP_MAX: usize = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// A set of candidate characters to pick from uniformly.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Strategy generating strings matching a regex-subset pattern.
#[derive(Debug, Clone)]
pub struct StringParam {
    pieces: Vec<Piece>,
}

fn printable() -> Vec<char> {
    (0x20u8..=0x7e).map(|b| b as char).collect()
}

fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> char {
    match chars.next() {
        Some('n') => '\n',
        Some('t') => '\t',
        Some('r') => '\r',
        Some('0') => '\0',
        Some(c) => c,
        None => '\\',
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut negated = false;
    let mut members: Vec<char> = Vec::new();
    if chars.peek() == Some(&'^') {
        negated = true;
        chars.next();
    }
    let mut pending: Option<char> = None;
    while let Some(&c) = chars.peek() {
        if c == ']' {
            chars.next();
            break;
        }
        chars.next();
        let resolved = if c == '\\' { parse_escape(chars) } else { c };
        if resolved == '-' && pending.is_some() && chars.peek().map(|&n| n != ']').unwrap_or(false)
        {
            // A range like `a-z`: close it with the next character.
            let start = pending.take().unwrap();
            let mut end = chars.next().unwrap();
            if end == '\\' {
                end = parse_escape(chars);
            }
            let (lo, hi) = if start <= end {
                (start, end)
            } else {
                (end, start)
            };
            members.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
        } else {
            if let Some(prev) = pending.take() {
                members.push(prev);
            }
            pending = Some(resolved);
        }
    }
    if let Some(prev) = pending {
        members.push(prev);
    }
    if negated {
        let mut all = printable();
        all.push('\n');
        all.retain(|c| !members.contains(c));
        members = all;
    }
    if members.is_empty() {
        members = printable();
    }
    members
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_REP_MAX)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_REP_MAX)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let parts: Vec<&str> = spec.splitn(2, ',').collect();
            let min: usize = parts[0].trim().parse().unwrap_or(0);
            let max: usize = if parts.len() == 2 {
                parts[1]
                    .trim()
                    .parse()
                    .unwrap_or(min.max(UNBOUNDED_REP_MAX))
            } else {
                min
            };
            (min, max.max(min))
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '.' => Atom::Class(printable()),
            '\\' => Atom::Class(vec![parse_escape(&mut chars)]),
            other => Atom::Class(vec![other]),
        };
        let (min, max) = parse_quantifier(&mut chars);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl StringParam {
    /// Parses `pattern` into a generator.
    pub fn new(pattern: &str) -> Self {
        StringParam {
            pieces: parse_pattern(pattern),
        }
    }
}

impl Strategy for StringParam {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let reps = rng.random_range(piece.min..=piece.max);
            let Atom::Class(ref members) = piece.atom;
            for _ in 0..reps {
                out.push(members[rng.random_range(0..members.len())]);
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        // Parsing per generate keeps `&str` usable directly as a strategy;
        // patterns are tiny so this is cheap relative to the test body.
        StringParam::new(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        StringParam::new(self).generate(rng)
    }
}
