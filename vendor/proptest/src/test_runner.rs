//! Test execution: configuration, deterministic per-case RNGs, and failure
//! reporting.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG handed to strategies; re-exported so strategies can name it.
pub type TestRng = SmallRng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases to run per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*` failed with the given message.
    Fail(String),
    /// A `prop_assume!` precondition rejected the generated inputs.
    Reject,
}

impl TestCaseError {
    /// A failed assertion with a rendered message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A rejected (filtered-out) case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Drives the cases of one property-test function.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    base_seed: u64,
    next: u32,
}

/// FNV-1a, used to derive a stable seed from the test name so each test
/// explores its own deterministic input sequence.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl TestRunner {
    /// Creates a runner for the named test function.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        // PROPTEST_SEED_OFFSET lets a developer re-roll every test's input
        // sequence without editing code (e.g. in a CI cron job).
        let offset: u64 = std::env::var("PROPTEST_SEED_OFFSET")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        TestRunner {
            config,
            name,
            base_seed: fnv1a(name.as_bytes()) ^ offset,
            next: 0,
        }
    }

    /// Yields the next case index, or `None` when all cases have run.
    pub fn next_case(&mut self) -> Option<u32> {
        if self.next < self.config.cases {
            let case = self.next;
            self.next += 1;
            Some(case)
        } else {
            None
        }
    }

    /// The deterministic RNG for a given case of this test.
    pub fn rng_for(&self, case: u32) -> TestRng {
        SmallRng::seed_from_u64(self.base_seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Records a case outcome; panics (failing the `#[test]`) on assertion
    /// failure, and silently skips `prop_assume!` rejections.
    pub fn record(&mut self, case: u32, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) | Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest: test `{}` failed at case {}/{} (seed {:#x}):\n{}",
                self.name, case, self.config.cases, self.base_seed, msg
            ),
        }
    }
}
