//! Collection strategies: `vec` and `hash_set` with a size range.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// A range of collection sizes; built from `usize`, `a..b`, or `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    /// Inclusive upper bound.
    end: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.start..=self.end)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { start: n, end: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            start: *r.start(),
            end: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `HashSet`s with `size` *attempted* insertions (duplicates
/// collapse, matching real proptest's behaviour).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let attempts = self.size.sample(rng);
        (0..attempts).map(|_| self.element.generate(rng)).collect()
    }
}
