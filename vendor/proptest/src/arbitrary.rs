//! `any::<T>()` — canonical strategies for simple types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngExt;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy covering the whole domain of `Self`.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for primitives; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_primitive {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_primitive! {
    bool => |rng| rng.random::<bool>(),
    u8 => |rng| rng.random::<u8>(),
    u16 => |rng| rng.random::<u16>(),
    u32 => |rng| rng.random::<u32>(),
    u64 => |rng| rng.random::<u64>(),
    usize => |rng| rng.random::<usize>(),
    i32 => |rng| rng.random::<i32>(),
    i64 => |rng| rng.random::<i64>(),
    f64 => |rng| rng.random::<f64>(),
}
