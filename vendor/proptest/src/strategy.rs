//! The [`Strategy`] trait and the built-in strategies: integer and float
//! ranges, tuples, constants, and the `prop_map` / `prop_flat_map`
//! combinators.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function from an RNG to a value.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it — the standard way to make dependent inputs (e.g. an index into a
    /// generated collection).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only generated values satisfying `pred`, retrying a bounded
    /// number of times.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

// A &Strategy is itself a strategy, so strategies can be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "proptest: prop_filter({}) rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Strategy that always yields clones of one value. Created by [`Just`].
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
