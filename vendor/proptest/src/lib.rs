//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, the [`strategy::Strategy`] trait with `prop_map`
//! and `prop_flat_map`, range / tuple / string-pattern strategies,
//! [`collection::vec`] and [`collection::hash_set`], `any::<T>()`, and the
//! `prop_assert*` macros. Inputs are drawn deterministically (the seed is a
//! hash of the test name and case index), so failures reproduce across runs.
//!
//! Differences from real proptest: no shrinking, no persistence of failing
//! seeds to disk, and a failure reports the test name, case index, and seed
//! (not the generated inputs) — inputs are recovered by re-running, since
//! generation is deterministic for a given test name and case.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each function body runs once per generated case;
/// arguments are drawn from the strategies after `in`.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     // In real code this would carry `#[test]`; here the doctest calls
///     // the generated function directly.
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            while let Some(case) = runner.next_case() {
                let mut rng = runner.rng_for(case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut rng,
                    );
                )+
                let outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                runner.record(case, outcome);
            }
        }
    )*};
}

/// Asserts a condition inside a property test, failing the current case (with
/// the generated inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`, both: `{:?}`",
            left
        );
    }};
}

/// Discards the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}
