//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! tiny slice of `rand` it actually uses is vendored here: a seedable
//! xoshiro256++ [`rngs::SmallRng`] plus the [`RngExt`] extension trait with
//! `random::<T>()` and `random_range(..)`. The generator is deterministic for
//! a given seed, which is exactly what the synthetic-workload generators and
//! tests rely on.

#![warn(missing_docs)]

/// Low-level generator interface: a source of uniformly random `u64` words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Small, fast pseudo-random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small-state xoshiro256++ generator (the algorithm behind the real
    /// crate's `SmallRng` on 64-bit targets). Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // All-zero state is the one forbidden fixed point of xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                // Lemire's multiply-shift maps 64 random bits onto the span
                // with negligible bias for the spans used here.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (self.start as u128 + hi) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (start as u128 + hi) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, the subset of the real crate's `Rng` this
/// workspace calls.
pub trait RngExt: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`. Panics if the range is empty.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5u32..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }
}
