//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_custom`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — so `cargo bench --no-run` compiles the real
//! bench sources unchanged. Running a bench performs a short warm-up and a
//! fixed, small number of timed iterations and prints mean wall-clock time
//! per iteration; there is no statistical analysis, outlier rejection, or
//! HTML report.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`]: an identity function opaque to the
/// optimizer, preventing benchmarked computations from being elided.
pub use std::hint::black_box;

/// Default number of timed iterations per benchmark.
const DEFAULT_SAMPLE_ITERS: u64 = 10;

/// Identifies one benchmark within a group: a function name plus a parameter
/// rendered into the id (e.g. `kdc/3` for `k = 3`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id `"{function_name}/{parameter}"`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a bare parameter, `"{parameter}"`.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; runs and times the measured code.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    /// Total measured time, reported by the caller after the closure runs.
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, called `iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call warms caches and page-faults lazy allocations.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the closure do its own timing: `f` receives the iteration count
    /// and returns the total elapsed time for that many iterations.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// A named collection of related benchmarks, created by
/// [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_iters: u64,
}

impl BenchmarkGroup {
    /// Sets the per-benchmark iteration count (the stub maps criterion's
    /// sample count directly onto iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_iters = (n as u64).max(1);
        self
    }

    /// Accepted for API compatibility; the stub ignores target measurement
    /// times and always runs a fixed iteration count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is a single untimed call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            iters: self.sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.checked_div(b.iters as u32).unwrap_or_default();
        println!(
            "bench {:<40} {:>12.3?}/iter ({} iters)",
            format!("{}/{}", self.name, id),
            per_iter,
            b.iters
        );
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, f: F) -> &mut Self {
        let id = id.to_string();
        self.run(&id, f);
        self
    }

    /// Runs a benchmark over one input value, passed to the closure by
    /// reference alongside the [`Bencher`].
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.id.clone();
        self.run(&id, |b| f(b, input));
        self
    }

    /// Ends the group. (The stub prints results as they run, so this only
    /// consumes the group.)
    pub fn finish(self) {}
}

impl Display for BenchmarkGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Top-level benchmark driver, mirroring criterion's type of the same name.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; the stub has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_iters: DEFAULT_SAMPLE_ITERS,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group(id);
        group.bench_function("bench", f);
        group.finish();
        self
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        println!("bench: done");
    }
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}
