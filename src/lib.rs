#![forbid(unsafe_code)]

//! # kdc-suite
//!
//! Facade crate for the kDC reproduction workspace. Re-exports the member
//! crates so that examples and integration tests can use a single dependency:
//!
//! * [`graph`] — graph substrate (CSR graphs, bitsets, cores, trusses,
//!   colouring, generators, I/O, the paper's named example graphs);
//! * [`kdc`] — the paper's contribution: the exact maximum k-defective clique
//!   solver with all branching/reduction/bounding rules and the §6 top-r
//!   extensions;
//! * [`api`] — the resident, typed query surface: a [`api::Session`] owning
//!   the graph plus every warm artifact (peeling, LRU-bounded CTCP
//!   reducers, witnesses, result memos), driven by `Query` x `Budget` x
//!   `Options` with an `Observer` event stream — the same surface the CLI,
//!   the daemon and the benches use;
//! * [`baselines`] — KDBB-like and MADEC-like baselines, a maximum-clique
//!   solver, and an independent brute-force reference solver.
//!
//! ## Quickstart
//!
//! ```
//! use kdc_suite::graph::Graph;
//! use kdc_suite::kdc::{Solver, SolverConfig};
//!
//! // A 5-cycle: the maximum clique has 2 vertices, but allowing one missing
//! // edge (k = 1) admits 3 vertices (two adjacent edges of the cycle).
//! let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
//! let sol = Solver::new(&g, 1, SolverConfig::kdc()).solve();
//! assert_eq!(sol.size(), 3);
//! ```

pub use kdc;
pub use kdc_api as api;
pub use kdc_baselines as baselines;
pub use kdc_graph as graph;
