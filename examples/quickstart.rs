//! Quickstart: build a small graph, find maximum k-defective cliques for a
//! few values of k, and inspect solver statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use kdc_suite::graph::named;
use kdc_suite::kdc::{Solver, SolverConfig};

fn main() {
    // The running example of the paper (Figure 2): twelve vertices, one K5,
    // one dense 6-vertex near-clique, one low-degree bridge vertex.
    let g = named::figure2();
    println!(
        "graph: n = {}, m = {}, density = {:.3}\n",
        g.n(),
        g.m(),
        g.density()
    );

    for k in 0..=5 {
        let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
        assert!(sol.is_optimal());
        let names: Vec<String> = sol.vertices.iter().map(|v| format!("v{}", v + 1)).collect();
        println!(
            "k = {k}: maximum {k}-defective clique has {} vertices: {{{}}} \
             (missing {} edges, {} search nodes)",
            sol.size(),
            names.join(", "),
            g.missing_edges_within(&sol.vertices),
            sol.stats.nodes,
        );
    }

    // A clique is a 0-defective clique; each unit of k buys at least as
    // large a solution.
    let s0 = Solver::new(&g, 0, SolverConfig::kdc()).solve().size();
    let s3 = Solver::new(&g, 3, SolverConfig::kdc()).solve().size();
    assert!(s3 >= s0);
    println!("\nrelaxing from cliques (k = 0) to k = 3 grew the solution from {s0} to {s3}.");
}
