//! Link prediction in protein-interaction-like networks — the application
//! that motivated k-defective cliques (Yu et al., Bioinformatics 2006 [49]).
//!
//! Protein complexes appear as near-cliques whose few missing edges are
//! likely *unobserved* interactions. We simulate a noisy interactome with a
//! planted complex, recover the maximum k-defective clique, and report its
//! missing pairs as predicted interactions.
//!
//! Run with: `cargo run --release --example protein_interaction`

use kdc_suite::graph::gen;
use kdc_suite::kdc::{Solver, SolverConfig};

fn main() {
    let mut rng = gen::seeded_rng(2006);
    // A 600-protein network: a 24-protein complex with 5 unobserved
    // interactions, embedded in sparse background noise.
    let (g, planted) = gen::planted_defective_clique(600, 24, 5, 0.01, &mut rng);
    println!(
        "interactome: {} proteins, {} observed interactions",
        g.n(),
        g.m()
    );
    println!(
        "planted complex: {} proteins, 5 unobserved interactions\n",
        planted.len()
    );

    let k = 5;
    let sol = Solver::new(&g, k, SolverConfig::kdc()).solve();
    assert!(sol.is_optimal());
    println!(
        "maximum {k}-defective clique: {} proteins found in {:.2?} \
         ({} search nodes)",
        sol.size(),
        sol.stats.total_time(),
        sol.stats.nodes
    );

    // Recovery quality against the planted ground truth.
    let planted_set: std::collections::HashSet<_> = planted.iter().copied().collect();
    let recovered = sol
        .vertices
        .iter()
        .filter(|v| planted_set.contains(v))
        .count();
    println!(
        "recovered {recovered}/{} proteins of the planted complex",
        planted.len()
    );

    // The missing pairs inside the solution are the predicted interactions.
    let mut predictions = Vec::new();
    for (i, &u) in sol.vertices.iter().enumerate() {
        for &v in &sol.vertices[i + 1..] {
            if !g.has_edge(u, v) {
                predictions.push((u, v));
            }
        }
    }
    println!("\npredicted (unobserved) interactions:");
    for (u, v) in &predictions {
        println!("  protein {u} — protein {v}");
    }
    assert!(predictions.len() <= k);
}
