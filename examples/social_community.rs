//! Community detection in a social network via top-r diversified k-defective
//! cliques (§6 of the paper; community-detection application from §1).
//!
//! Social communities are dense but rarely perfect cliques — members miss a
//! few mutual ties. Diversified k-defective cliques peel off one dense core
//! per community.
//!
//! Run with: `cargo run --release --example social_community`

use kdc_suite::graph::gen::{self, CommunityParams};
use kdc_suite::kdc::topr::top_r_diversified;
use kdc_suite::kdc::SolverConfig;

fn main() {
    let mut rng = gen::seeded_rng(42);
    let params = CommunityParams {
        communities: 5,
        community_size: 30,
        p_in: 0.85,
        p_out: 0.02,
    };
    let g = gen::community(&params, &mut rng);
    println!(
        "social network: {} members, {} ties, {} hidden communities\n",
        g.n(),
        g.m(),
        params.communities
    );

    let k = 3;
    let cores = top_r_diversified(&g, k, params.communities, SolverConfig::kdc());
    println!(
        "top-{} diversified {k}-defective cliques (greedy peel, (1 − 1/e)-approx coverage):",
        params.communities
    );
    let mut covered = 0usize;
    for (i, core) in cores.iter().enumerate() {
        // Attribute the core to the community most of its members belong to.
        let mut votes = vec![0usize; params.communities];
        for &v in core {
            votes[v as usize / params.community_size] += 1;
        }
        let (home, &count) = votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("nonempty");
        covered += core.len();
        println!(
            "  core #{i}: {} members, {}/{} from community {home}",
            core.len(),
            count,
            core.len()
        );
        assert!(g.is_k_defective_clique(core, k));
    }
    println!(
        "\ncovered {covered} distinct members across {} cores",
        cores.len()
    );
    assert_eq!(cores.len(), params.communities);
}
