//! A small command-line solver for graph files (DIMACS `.clq` or edge-list).
//!
//! Run with the bundled sample (the paper's Figure 2 graph):
//!
//! ```text
//! cargo run --release --example dimacs_solver -- examples/data/figure2.clq 2
//! ```
//!
//! Or on any of your own files: `dimacs_solver <path> <k> [preset]`.

use kdc_suite::graph::io;
use kdc_suite::kdc::{Solver, SolverConfig, Status};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (path, k) = match (args.get(1), args.get(2)) {
        (Some(p), Some(k)) => (p.clone(), k.parse::<usize>().expect("k must be an integer")),
        _ => {
            // Default: the bundled Figure 2 sample with k = 2.
            ("examples/data/figure2.clq".to_string(), 2)
        }
    };
    let preset = args.get(3).map(String::as_str).unwrap_or("kdc");
    let config = match preset {
        "kdc" => SolverConfig::kdc(),
        "kdc_t" => SolverConfig::kdc_t(),
        "kdbb" => SolverConfig::kdbb_like(),
        "madec" => SolverConfig::madec_like(),
        other => panic!("unknown preset {other:?} (use kdc, kdc_t, kdbb or madec)"),
    };

    let g = io::read_graph(Path::new(&path)).expect("readable graph file");
    println!("{path}: n = {}, m = {}", g.n(), g.m());

    let sol = Solver::new(&g, k, config).solve();
    match sol.status {
        Status::Optimal => println!(
            "optimal maximum {k}-defective clique: {} vertices",
            sol.size()
        ),
        other => println!("best found ({other:?}): {} vertices", sol.size()),
    }
    println!(
        "vertices (1-based): {:?}",
        sol.vertices.iter().map(|v| v + 1).collect::<Vec<_>>()
    );
    println!(
        "missing edges used: {} of {k} | time: {:.2?} | nodes: {}",
        g.missing_edges_within(&sol.vertices),
        sol.stats.total_time(),
        sol.stats.nodes
    );
}
